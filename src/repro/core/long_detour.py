"""Proposition 5.1 — long-detour replacement paths in Õ(n^{2/3} + D) rounds.

Pipeline (all stages charged to the shared ledger):

1. sample landmarks L (Definition 5.2);
2. hop-bounded k-source BFS from L in G \\ P, forward and backward, then
   the |L|² pair broadcast and local closure (Lemmas 5.4–5.6);
3. segment prefix/suffix sweeps along P plus the segment-summary
   broadcast (Lemmas 5.7–5.9);
4. each v_i finishes locally:
       x_i = min_{l ∈ L} ( |s l ⋄ P[v_i, t]| + |l t ⋄ P[s, v_{i+1}]| ),
   which is exactly the best replacement length over s-t paths that avoid
   (v_i, v_{i+1}) and visit a landmark — an upper bound on |st ⋄ e|
   always, and equal to the best *long-detour* replacement w.h.p.
   (every long detour contains a landmark, Lemma 5.3).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..congest.dispatch import dispatch
from ..congest.network import CongestNetwork
from ..congest.spanning_tree import SpanningTree
from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance
from .knowledge import PathKnowledge
from .landmark_distances import compute_landmark_distances
from .landmarks import sample_landmarks
from .segments import (
    checkpoint_positions,
    finish_distance_tables,
    prefix_min_to_landmarks,
    suffix_min_from_landmarks,
)


def long_detour_lengths(
    instance: RPathsInstance,
    net: CongestNetwork,
    tree: SpanningTree,
    knowledge: PathKnowledge,
    zeta: int,
    landmarks: Optional[Sequence[int]] = None,
    seed: int = 0,
    landmark_c: float = 2.0,
    phase: str = "long-detour(P5.1)",
    parallel: int = 1,
    shared=None,
) -> List[int]:
    """Proposition 5.1.  Returns ``x[i]`` for every path edge i.

    ``x[i]`` ≥ |st ⋄ e_i| always (validity), and ``x[i]`` ≤ the best
    long-detour replacement length w.h.p. (approximation); the caller
    takes the min with the short-detour output (Theorem 1).
    """
    h = knowledge.hop_count
    with net.ledger.phase(phase):
        if landmarks is None:
            landmarks = sample_landmarks(
                instance.n, zeta, c=landmark_c, seed=seed)
        landmarks = sorted(set(landmarks))
        if not landmarks:
            return [INF] * h

        distances = compute_landmark_distances(
            net, tree, landmarks,
            hop_limit=zeta,
            avoid_edges=instance.path_edge_set(),
            parallel=parallel, shared=shared,
        )

        segment_len = max(1, math.ceil(instance.n ** (2.0 / 3.0)))
        checkpoints = checkpoint_positions(h, segment_len)
        prefix_table = prefix_min_to_landmarks(
            net, knowledge, distances, checkpoints)
        suffix_table = suffix_min_from_landmarks(
            net, knowledge, distances, checkpoints)
        tables = finish_distance_tables(
            net, tree, knowledge, distances, checkpoints,
            prefix_table, suffix_table)
        m_final, n_final = tables["M"], tables["N"]

        # The final Proposition 5.1 combine is ledger-free local work;
        # the vector fabric runs it as one (k, h) min-plus reduction.
        if not h:
            return []
        return dispatch("pairwise_min_sum", net,
                        m_rows=m_final, n_rows=n_final)


def _pairwise_min_sum_message(
    net: CongestNetwork,
    m_rows: List[List[int]],
    n_rows: List[List[int]],
) -> List[int]:
    """The scalar min-plus reduction (the registry's fallback lane)."""
    k = len(m_rows)
    h = len(m_rows[0]) if m_rows else 0
    out = []
    for i in range(h):
        best = INF
        for j in range(k):
            candidate = m_rows[j][i] + n_rows[j][i]
            if candidate < best:
                best = candidate
        out.append(clamp_inf(best))
    return out
