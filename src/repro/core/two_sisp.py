"""Definition 2.3 / Corollary 6.2 — the 2-SiSP problem.

The second simple shortest path length is min_e |st ⋄ e| over the edges
of P.  Given an RPaths execution, an O(D)-round convergecast-min over a
spanning tree (plus a downcast so *all* vertices of P learn the value,
as Definition 2.3 requires) finishes the job — exactly the "additional
O(D) rounds" the reduction in Corollary 6.2 charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .. import telemetry
from ..congest.broadcast import global_min
from ..congest.network import resolve_fabric
from ..congest.spanning_tree import (
    SpanningTree,
    build_spanning_tree,
    replay_spanning_tree_charges,
)
from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from .rpaths import RPathsReport, solve_rpaths


@dataclass
class TwoSispReport:
    """Result of a distributed 2-SiSP execution."""

    length: int
    rpaths: RPathsReport

    @property
    def rounds(self) -> int:
        return self.rpaths.rounds

    @property
    def exists(self) -> bool:
        return self.length < INF


def solve_two_sisp(
    instance: RPathsInstance,
    zeta: Optional[int] = None,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
    landmark_c: float = 2.0,
    use_oracle_knowledge: bool = False,
    fabric: str = "fast",
) -> TwoSispReport:
    """Solve 2-SiSP: RPaths (Theorem 1) + an O(D) aggregation.

    The aggregation genuinely runs on the same ledger, so the reported
    round count covers the full Corollary 6.2 pipeline.
    """
    fabric = resolve_fabric(fabric)
    with telemetry.span("solve/two-sisp", instance=instance.name,
                        n=instance.n, fabric=fabric) as sp:
        report = solve_rpaths(
            instance, zeta=zeta, seed=seed, landmarks=landmarks,
            landmark_c=landmark_c,
            use_oracle_knowledge=use_oracle_knowledge,
            fabric=fabric)
        sp.set_ledger(report.ledger, fresh=True)
        # Re-create the network topology on the same ledger for the
        # final aggregation (solve_rpaths owns its network; the O(D)
        # tree setup is what the corollary's reduction pays).  The
        # solver already built the BFS tree of this very topology, so
        # reuse it and replay the identical flood charges instead of
        # re-running the construction.
        net = instance.build_network(fabric=fabric)
        net.ledger = report.ledger
        tree = report.extras.get("tree")
        if isinstance(tree, SpanningTree) and len(tree.parent) == net.n:
            replay_spanning_tree_charges(net, tree, phase="2sisp-tree")
        else:  # pragma: no cover - defensive (reports carry a tree)
            tree = build_spanning_tree(net, phase="2sisp-tree")
        values = {
            instance.path[i]: report.lengths[i]
            for i in range(instance.hop_count)
        }
        with net.ledger.phase("2sisp-aggregate(C6.2)"):
            best = global_min(net, tree, values, identity=INF)
    return TwoSispReport(length=min(best, INF), rpaths=report)
