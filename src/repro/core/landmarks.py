"""Definition 5.2 — landmark sampling, and the Lemma 5.3 property.

Landmarks are sampled independently with probability c·log(n)/n^{2/3}
(more generally c·log(n)/ζ for a configurable threshold), so that every
ζ-vertex stretch of any long detour contains a landmark with probability
1 − n^{−Ω(c)} (Lemma 5.3).

Tests that need *deterministic* exactness pass an explicit landmark set
(e.g. every vertex) instead of sampling; the solvers accept either.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence


def landmark_probability(n: int, zeta: int, c: float = 2.0) -> float:
    """The Definition 5.2 sampling probability, clamped to [0, 1]."""
    if n <= 1:
        return 1.0
    return min(1.0, c * math.log(n) / max(1, zeta))


def sample_landmarks(
    n: int,
    zeta: int,
    c: float = 2.0,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Sample the landmark set L ⊆ V (Definition 5.2)."""
    if rng is None:
        rng = random.Random(seed)
    p = landmark_probability(n, zeta, c)
    return [v for v in range(n) if rng.random() < p]


def expected_landmark_count(n: int, zeta: int, c: float = 2.0) -> float:
    """E|L| = n · p — Õ(n^{1/3}) at the paper's ζ = n^{2/3}."""
    return n * landmark_probability(n, zeta, c)


def segment_hits_landmark(
    vertices: Sequence[int],
    landmarks: Sequence[int],
) -> bool:
    """Whether a vertex stretch contains a landmark (Lemma 5.3 check)."""
    landmark_set = set(landmarks)
    return any(v in landmark_set for v in vertices)
