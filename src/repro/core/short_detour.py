"""Proposition 4.1 — short-detour replacement paths in O(ζ) rounds.

Stage 1 (Lemma 4.2): the pruned backward hop-BFS gives every v_i the
table f*_{v_i}(d) for d ∈ [ζ].

Stage 2 (Lemma 4.3, local): from the table, v_i derives

    X[i, ≥ j] = min over short detours leaving exactly at v_i and
                rejoining at or after v_j of the replacement length,

using  h*(i,j) = min{d : f*_{v_i}(d) = j}  and the descending recurrence
X[i, ≥ j] = min(X[i, ≥ j+1], h_st − (j−i) + h*(i,j)).

Stage 3 (Lemma 4.4, ζ−1 rounds of pipelining along P): the prefix-closed
quantity X[≤ i, ≥ i+d] is swept down from d = ζ to d = 1 with one word
per P-edge per round, leaving every v_i with

    X[≤ i, ≥ i+1] = best short-detour replacement length for (v_i, v_{i+1}).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..congest.dispatch import dispatch
from ..congest.network import CongestNetwork
from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from .hop_bfs import pruned_max_hop_bfs
from .knowledge import PathKnowledge


def x_geq_from_table(
    table: List[Optional[tuple]],
    i: int,
    hop_count: int,
    zeta: int,
) -> Dict[int, int]:
    """Lemma 4.3: compute X[i, ≥ j] for all j > i from f*_{v_i}.

    ``table[d]`` is (f*_{v_i}(d), aux) or None.  Pure local computation
    of vertex v_i; returns a dict over j ∈ [i+1, h_st] (missing keys are
    INF, which only happens past the table's reach).
    """
    # h*(i, j): first exact hop count at which the BFS furthest-index
    # equals j.
    h_star: Dict[int, int] = {}
    for d in range(1, min(zeta, len(table) - 1) + 1):
        entry = table[d]
        if entry is None:
            continue
        j = entry[0]
        if j > i and j not in h_star:
            h_star[j] = d

    x_geq: Dict[int, int] = {}
    running = INF
    for j in range(hop_count, i, -1):
        if j in h_star:
            candidate = hop_count - (j - i) + h_star[j]
            if candidate < running:
                running = candidate
        x_geq[j] = running
    return x_geq


def short_detour_lengths(
    instance: RPathsInstance,
    net: CongestNetwork,
    knowledge: PathKnowledge,
    zeta: int,
    phase: str = "short-detour(P4.1)",
) -> List[int]:
    """Proposition 4.1 — the O(ζ)-round deterministic algorithm.

    Returns ``lengths[i]`` = shortest replacement length for edge
    (v_i, v_{i+1}) over *short* detours (≤ ζ hops), INF when none exists.
    """
    path = knowledge.path
    h = knowledge.hop_count
    with net.ledger.phase(phase):
        # Stage 1: pruned hop-BFS seeded by every P vertex's index.
        seeds = {
            path[i]: (i, knowledge.dist_to_t[i]) for i in range(h + 1)
        }
        tables = pruned_max_hop_bfs(
            net,
            seeds=seeds,
            hop_limit=zeta,
            avoid_edges=instance.path_edge_set(),
            record_for=path,
            phase="hop-bfs(L4.2)",
        )

        # Stage 2: local Lemma 4.3 at every v_i.
        x_geq = [
            x_geq_from_table(tables[path[i]], i, h, zeta)
            for i in range(h + 1)
        ]

        # Stage 3: Lemma 4.4 — ζ−1 pipelined rounds along P.
        # best[i] holds X[≤ i, ≥ i+d] as d descends from ζ to 1.
        best = dispatch("dp_sweep", net, path=path, x_geq=x_geq,
                        hop_count=h, zeta=zeta,
                        name="dp-pipeline(L4.4)")
        return [min(best[i], INF) for i in range(h)]


def _dp_sweep_message(
    net: CongestNetwork,
    path: Sequence[int],
    x_geq: List[Dict[int, int]],
    hop_count: int,
    zeta: int,
    name: str,
) -> List[int]:
    """The per-round DP exchange loop (the registry's fallback lane)."""
    h = hop_count

    def x_i_geq(i: int, j: int) -> int:
        if j > h:
            return INF
        return x_geq[i].get(j, INF)

    with net.ledger.phase(name):
        best = [x_i_geq(i, i + zeta) for i in range(h + 1)]
        for d in range(zeta, 1, -1):
            outbox: Dict[int, list] = {}
            for i in range(h):
                outbox.setdefault(path[i], []).append(
                    (path[i + 1], ("dp", best[i])))
            net.exchange(outbox)
            new_best = list(best)
            for i in range(h + 1):
                incoming = best[i - 1] if i > 0 else INF
                new_best[i] = min(incoming, x_i_geq(i, i + (d - 1)))
            best = new_best
        return best
