"""Theorem 1 — the Õ(n^{2/3} + D)-round RPaths solver.

``solve_rpaths`` runs, on a fresh CONGEST network for the instance:

1. Lemma 2.5 knowledge acquisition (Õ(√n + D) rounds);
2. Proposition 4.1, short detours (O(ζ) deterministic rounds);
3. Proposition 5.1, long detours (Õ(n^{2/3} + D) randomized rounds);
4. the pointwise minimum of the two outputs (local).

With ζ = n^{2/3} (the default), the total is Õ(n^{2/3} + D) rounds, and
the answer is exact w.h.p. — tests compare against the centralized
oracle on every family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..congest.metrics import RoundLedger
from ..congest.network import resolve_fabric
from ..congest.spanning_tree import build_spanning_tree
from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from .knowledge import acquire_path_knowledge, oracle_knowledge
from .long_detour import long_detour_lengths
from .short_detour import short_detour_lengths


def default_zeta(n: int) -> int:
    """The paper's threshold ζ = n^{2/3} (Section 2)."""
    return max(1, math.ceil(n ** (2.0 / 3.0)))


@dataclass
class RPathsReport:
    """Output of a distributed RPaths execution.

    ``lengths[i]`` is the computed |st ⋄ (v_i, v_{i+1})| (INF when no
    replacement path exists).  The ledger exposes per-phase round
    breakdowns; convenience properties surface the headline numbers.
    """

    instance_name: str
    lengths: List[int]
    ledger: RoundLedger
    zeta: int
    landmark_count: int = 0
    diameter: Optional[int] = None
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.ledger.rounds

    @property
    def messages(self) -> int:
        return self.ledger.messages

    @property
    def max_link_words(self) -> int:
        return self.ledger.max_link_words

    def phase_rounds(self, name: str) -> int:
        return self.ledger[name].rounds if name in self.ledger else 0


def solve_rpaths(
    instance: RPathsInstance,
    zeta: Optional[int] = None,
    seed: int = 0,
    landmarks: Optional[Sequence[int]] = None,
    landmark_c: float = 2.0,
    use_oracle_knowledge: bool = False,
    bandwidth_words: Optional[int] = None,
    compute_diameter: bool = False,
    fabric: str = "fast",
    parallel: int = 1,
) -> RPathsReport:
    """Theorem 1: solve unweighted directed RPaths on the instance.

    Parameters
    ----------
    zeta:
        Short/long detour threshold; defaults to n^{2/3}.
    landmarks:
        Explicit landmark set overriding Definition 5.2 sampling (tests
        use the full vertex set for deterministic exactness).
    use_oracle_knowledge:
        Skip the Lemma 2.5 phase and grant its output for free — used by
        unit tests to isolate later stages; end-to-end runs leave this
        False.
    fabric:
        Exchange engine (``"fast"``/``"strict"``/``"reference"``); the
        fabric equivalence tests run the full solver on each.
    parallel:
        With ``parallel >= 2``, the topology's frozen array export is
        published once into shared memory
        (:mod:`repro.runtime.sharedmem`) and the solver's independent
        k-source BFS runs (the forward/backward landmark pair) fan
        out over that many worker processes.  Results *and* round
        ledgers are bit-identical to ``parallel=1``; the knob only
        buys wall-clock.
    """
    if instance.weighted:
        raise ValueError(
            "Theorem 1 targets unweighted graphs; use approx.apx_rpaths "
            "for weighted instances (Theorem 3)")
    fabric = resolve_fabric(fabric)
    if zeta is None:
        zeta = default_zeta(instance.n)

    with telemetry.span("solve/rpaths", instance=instance.name,
                        n=instance.n, fabric=fabric,
                        zeta=zeta, parallel=parallel) as sp:
        net = instance.build_network(bandwidth_words=bandwidth_words,
                                     fabric=fabric)
        sp.set_ledger(net.ledger)
        shared = None
        if parallel >= 2 and not net.strict:
            from ..runtime import sharedmem
            shared = sharedmem.publish_topology(net.topology)
        try:
            tree = build_spanning_tree(net)
            if use_oracle_knowledge:
                knowledge = oracle_knowledge(instance)
            else:
                knowledge = acquire_path_knowledge(
                    instance, net, tree=tree, seed=seed)

            short = short_detour_lengths(instance, net, knowledge,
                                         zeta)
            long_ = long_detour_lengths(
                instance, net, tree, knowledge, zeta,
                landmarks=landmarks, seed=seed + 1,
                landmark_c=landmark_c, parallel=parallel,
                shared=shared)
        finally:
            if shared is not None:
                shared.close()

        lengths = [min(a, b) for a, b in zip(short, long_)]
    report = RPathsReport(
        instance_name=instance.name,
        lengths=[x if x < INF else INF for x in lengths],
        ledger=net.ledger,
        zeta=zeta,
        landmark_count=len(landmarks) if landmarks is not None else
        _count_default_landmarks(instance.n, zeta, landmark_c, seed + 1),
        diameter=net.undirected_diameter() if compute_diameter else None,
        extras={
            "short": short,
            "long": long_,
            # The solver's spanning tree, for callers that keep working
            # on the same topology (2-SiSP's Corollary 6.2 aggregation
            # reuses it instead of re-flooding).
            "tree": tree,
        },
    )
    return report


def _count_default_landmarks(n: int, zeta: int, c: float,
                             seed: int) -> int:
    from .landmarks import sample_landmarks
    return len(sample_landmarks(n, zeta, c=c, seed=seed))
