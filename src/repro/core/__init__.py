"""The paper's primary contribution: exact RPaths for unweighted directed
graphs in Õ(n^{2/3} + D) rounds (Theorem 1) and 2-SiSP (Corollary 6.2)."""

from .knowledge import (
    PathKnowledge,
    acquire_path_knowledge,
    oracle_knowledge,
)
from .hop_bfs import pruned_max_hop_bfs
from .short_detour import short_detour_lengths, x_geq_from_table
from .landmarks import (
    expected_landmark_count,
    landmark_probability,
    sample_landmarks,
    segment_hits_landmark,
)
from .landmark_distances import (
    LandmarkDistances,
    compute_landmark_distances,
    landmark_closure,
)
from .segments import (
    checkpoint_positions,
    finish_distance_tables,
    prefix_min_to_landmarks,
    suffix_min_from_landmarks,
)
from .long_detour import long_detour_lengths
from .rpaths import RPathsReport, default_zeta, solve_rpaths
from .two_sisp import TwoSispReport, solve_two_sisp

__all__ = [
    "LandmarkDistances",
    "PathKnowledge",
    "RPathsReport",
    "TwoSispReport",
    "acquire_path_knowledge",
    "checkpoint_positions",
    "compute_landmark_distances",
    "default_zeta",
    "expected_landmark_count",
    "finish_distance_tables",
    "landmark_closure",
    "landmark_probability",
    "long_detour_lengths",
    "oracle_knowledge",
    "prefix_min_to_landmarks",
    "pruned_max_hop_bfs",
    "sample_landmarks",
    "segment_hits_landmark",
    "short_detour_lengths",
    "solve_rpaths",
    "solve_two_sisp",
    "suffix_min_from_landmarks",
    "x_geq_from_table",
]
