"""Lemma 4.2 — hop-constrained BFS with pruned propagation.

The paper's key congestion-avoidance idea: run a BFS *backward* (along
reversed edges, excluding the edges of P) from every vertex of P
simultaneously, but let each vertex forward, in each round, only the BFS
originating from the *furthest* vertex of P (the largest path index).
This keeps the load at one O(log n)-bit message per edge per round while
still computing, for every vertex u and every d ∈ [ζ],

    f*_u(d) = max { j : a walk of length exactly d from u to v_j exists
                        in G \\ P },

(-∞ when no such j exists; Lemma 4.2's inductive claim
``f*_u(d) = max S_d(u)`` is exactly the recurrence this module runs).

Two generalisations serve Section 7:

* ``delay``: an integer per-edge hop count, which runs the same BFS on
  the rounding graphs G_d of Section 7.1 — an edge of weight w is a path
  of ``delay(w)`` unit edges in G_d, so a value crossing it advances
  ``delay(w)`` exact-hops at once (no padding is possible: subdivision
  vertices have degree 2 and the graph is directed);
* ``sense="forward"`` with ``select="min"``: the mirror image used for
  detours *ending* at a vertex — values travel along edge directions and
  each vertex forwards the *smallest* path index, computing
  g*_u(d) = min { j : a walk of exactly d hops from v_j to u exists }.
  (Minimal j is simultaneously the most permissive start constraint and
  the cheapest prefix |s v_j|, mirroring why max-j is right forward.)
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..congest.dispatch import dispatch
from ..congest.network import CongestNetwork
from ..congest.topology import downstream_step_tables

EdgeSet = FrozenSet[Tuple[int, int]]
_EMPTY: EdgeSet = frozenset()

#: A BFS value: (path index j, auxiliary word).  The auxiliary word is
#: dist_G(v_j, t) (backward sense) or dist_G(s, v_j) (forward sense),
#: attached to the seed as the proof of Lemma 7.5 prescribes; comparing
#: by index alone is sound because the auxiliary word is a function of
#: the index.
Value = Tuple[int, int]


def pruned_max_hop_bfs(
    net: CongestNetwork,
    seeds: Dict[int, Value],
    hop_limit: int,
    avoid_edges: EdgeSet = _EMPTY,
    delay: Optional[Callable[[int], int]] = None,
    record_for: Optional[Iterable[int]] = None,
    phase: Optional[str] = None,
    run_full_budget: bool = True,
    sense: str = "backward",
    select: str = "max",
) -> Dict[int, List[Optional[Value]]]:
    """Run the pruned hop-BFS for exactly ``hop_limit`` exact-hop rounds.

    Parameters
    ----------
    seeds:
        vertex -> (index, aux); these are the S_0 values (each v_i seeds
        its own index i).
    hop_limit:
        ζ (or ζ* for the rounding graphs): the exact-hop horizon.
    avoid_edges:
        Directed edges the walks must avoid — the edges of P.
    delay:
        ``delay(weight) -> hops`` for the G_d simulation; ``None`` means
        one hop per edge (the unweighted Lemma 4.2).
    record_for:
        Vertices whose full f* table should be returned (the P vertices);
        ``None`` records every vertex.
    run_full_budget:
        The deterministic algorithm runs all ``hop_limit`` rounds; tests
        may disable the idle tail for speed.  With ``False``, the loop
        exits before a round in which nothing is in flight and nothing
        is scheduled; every round that does start is charged to the
        ledger (as an exchange or an idle round), so early-exit ledgers
        agree with full-budget ledgers on their common prefix.
    sense:
        ``"backward"``: walks run from u *to* the seeds, messages travel
        against edge directions (Lemma 4.2).  ``"forward"``: walks run
        from the seeds *to* u, messages travel along edge directions.
    select:
        ``"max"`` keeps the largest index per round (Lemma 4.2);
        ``"min"`` the smallest (the Section 7 mirror).

    Returns
    -------
    ``tables[u][d]`` = the surviving (index, aux) pair at exact hop d,
    or None for "no walk", for d ∈ 0..hop_limit.
    """
    if sense not in ("backward", "forward"):
        raise ValueError(f"unknown sense {sense!r}")
    if select not in ("max", "min"):
        raise ValueError(f"unknown select {select!r}")

    name = phase if phase is not None else f"hop-bfs(L4.2,{sense})"
    return dispatch(
        "hop_bfs", net, seeds=seeds, hop_limit=hop_limit,
        avoid_edges=avoid_edges, delay=delay, record_for=record_for,
        name=name, run_full_budget=run_full_budget, sense=sense,
        select=select)


def _hop_bfs_message(
    net: CongestNetwork,
    seeds: Dict[int, Value],
    hop_limit: int,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]],
    record_for: Optional[Iterable[int]],
    name: str,
    run_full_budget: bool,
    sense: str,
    select: str,
) -> Dict[int, List[Optional[Value]]]:
    """The message-engine round loop (the registry's fallback lane)."""
    prefer_larger = select == "max"

    def better(a: Value, b: Optional[Value]) -> bool:
        if b is None:
            return True
        return a[0] > b[0] if prefer_larger else a[0] < b[0]

    record = set(record_for) if record_for is not None else set(
        range(net.n))

    # ``avoid_edges`` and ``delay`` are fixed for the whole run: hoist
    # the filtered send targets and per-link hop advances out of the
    # round loop (batch-friendly outbox construction — the inner loop
    # below only formats messages over prebuilt lists).  Backward walks
    # send against edge directions, i.e. the "in" downstream tables.
    targets, step_in = downstream_step_tables(
        net.topology, "in" if sense == "backward" else "out",
        avoid_edges, delay)
    exchange = net.exchange

    with net.ledger.phase(name):
        tables: Dict[int, List[Optional[Value]]] = {
            u: [None] * (hop_limit + 1) for u in record
        }
        # current[u] = the surviving value at the exact hop being
        # processed (f*_u(d) / g*_u(d)).
        current: Dict[int, Value] = dict(seeds)
        for u, value in seeds.items():
            if u in record:
                tables[u][0] = value
        # scheduled[d][u] = best candidate arriving at exact-hop d.
        scheduled: Dict[int, Dict[int, Value]] = {}
        # One message object per distinct value, shared across senders
        # and rounds: equal values travel as one tuple, so the batched
        # fabric's per-round id-keyed size memo collapses the whole
        # frontier to a single sizing.
        message_of: Dict[Value, tuple] = {}

        for d in range(1, hop_limit + 1):
            # Quiescence is decided before the round starts: once
            # nothing is in flight and nothing is scheduled, no further
            # round executes (and none is charged).  A round that does
            # start is always charged — as an exchange when messages
            # move, as an idle round otherwise — so early-exit ledgers
            # agree with full-budget ledgers on every executed round.
            if not run_full_budget and not current and not scheduled:
                break
            outbox: Dict[int, list] = {}
            for u, value in current.items():
                row = targets[u]
                if row:
                    message = message_of.get(value)
                    if message is None:
                        message = message_of[value] = (
                            "hopv", value[0], value[1])
                    outbox[u] = [(x, message) for x, _ in row]
            if outbox:
                inbox = exchange(outbox)
            else:
                net.idle_round()
                inbox = {}
            # Receivers schedule arrivals for the exact hop at which the
            # walk completes the (possibly subdivided) edge.
            for x, arrivals in inbox.items():
                steps = step_in[x]
                for sender, (_, idx, aux) in arrivals:
                    arrive = (d - 1) + steps[sender]
                    if arrive > hop_limit:
                        continue
                    bucket = scheduled.setdefault(arrive, {})
                    if better((idx, aux), bucket.get(x)):
                        bucket[x] = (idx, aux)
            current = scheduled.pop(d, {})
            for u, value in current.items():
                if u in record:
                    tables[u][d] = value
        return tables
