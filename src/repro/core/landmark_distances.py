"""Lemmas 5.4 and 5.6 — distances through the landmark set.

Both lemmas are powered by two hop-bounded k-source BFS runs in G \\ P
(Lemma 5.5) plus one broadcast:

* a *forward* BFS from every landmark gives, at each vertex v, the
  hop-bounded distance l_j → v — in particular each landmark l_k learns
  the hop-bounded pair distance l_j → l_k;
* the landmarks broadcast the |L|² pair distances (Lemma 2.4), after
  which every vertex locally computes the min-plus closure, recovering
  the exact dist_{G\\P}(l_j, l_k) w.h.p. (Lemma 5.4 — long l_j → l_k
  paths decompose into ≤ h-hop landmark-to-landmark segments by
  Lemma 5.3);
* a *backward* BFS from every landmark gives, at each vertex v, the
  hop-bounded distance v → l_j, which combined with the closure yields
  the exact dist_{G\\P}(v, l_j) w.h.p. (Lemma 5.6).

The delay hook threads through to
:func:`~repro.congest.multisource.multi_source_hop_bfs` so the weighted
(1+ε) variant (Proposition 7.11) reuses this module with scaled hops.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..congest.broadcast import broadcast_messages
from ..congest.dispatch import dispatch
from ..congest.multisource import multi_source_hop_bfs
from ..congest.network import CongestNetwork
from ..congest.spanning_tree import SpanningTree
from ..congest.words import INF, clamp_inf
from ..telemetry import scale as _scale

EdgeSet = FrozenSet[Tuple[int, int]]

#: Converts a hop count in the (possibly subdivided) BFS graph back to a
#: length in G.  Identity for the unweighted case.
HopsToLength = Callable[[int], int]


def _identity(h: int) -> int:
    return h


def landmark_closure(
    pair_hops: List[List[int]],
    hops_to_length: HopsToLength = _identity,
) -> List[List[int]]:
    """Min-plus closure of the hop-bounded landmark pair distances.

    Pure local computation (every vertex holds the same broadcast data);
    Floyd–Warshall over the |L| × |L| matrix.
    """
    k = len(pair_hops)
    dist = [[clamp_inf(hops_to_length(pair_hops[a][b])
                       if pair_hops[a][b] < INF else INF)
             for b in range(k)] for a in range(k)]
    for a in range(k):
        dist[a][a] = 0
    for mid in range(k):
        row_mid = dist[mid]
        for a in range(k):
            via = dist[a][mid]
            if via >= INF:
                continue
            row_a = dist[a]
            for b in range(k):
                candidate = via + row_mid[b]
                if candidate < row_a[b]:
                    row_a[b] = candidate
    return dist


class LandmarkDistances:
    """All landmark-related distances of Section 5, post-broadcast.

    Attributes
    ----------
    landmarks:
        The landmark list; ranks index all matrices.
    closure:
        ``closure[a][b]`` = dist_{G\\P}(l_a, l_b) (exact w.h.p.).
    from_landmark:
        ``from_landmark[a][v]`` = dist_{G\\P}(l_a, v) (exact w.h.p.).
    to_landmark:
        ``to_landmark[a][v]`` = dist_{G\\P}(v, l_a) (exact w.h.p.).
    """

    def __init__(self, landmarks: Sequence[int],
                 closure: List[List[int]],
                 from_landmark: List[List[int]],
                 to_landmark: List[List[int]]) -> None:
        self.landmarks = list(landmarks)
        self.closure = closure
        self.from_landmark = from_landmark
        self.to_landmark = to_landmark

    @property
    def count(self) -> int:
        return len(self.landmarks)


def compute_landmark_distances(
    net: CongestNetwork,
    tree: SpanningTree,
    landmarks: Sequence[int],
    hop_limit: int,
    avoid_edges: EdgeSet,
    delay: Optional[Callable[[int], int]] = None,
    hops_to_length: HopsToLength = _identity,
    phase: str = "landmark-distances(L5.4/5.6)",
    parallel: int = 1,
    shared=None,
) -> LandmarkDistances:
    """Run the Lemma 5.4 + Lemma 5.6 pipeline.

    Rounds: two k-source h-hop BFS runs (O(|L| + h) each, Lemma 5.5) plus
    one broadcast of |L|² words (O(|L|² + D), Lemma 2.4).

    The forward and backward BFS runs are independent primitive calls;
    with ``parallel >= 2`` and a ``shared``
    :class:`~repro.runtime.sharedmem.PublishedTopology`, they fan out
    to worker processes attached to the shared arrays, with results
    and ledger charges bit-identical to the serial pair.
    """
    k = len(landmarks)
    with net.ledger.phase(phase):
        if k == 0:
            return LandmarkDistances([], [], [], [])

        fanout = False
        if shared is not None and parallel >= 2:
            # Lazy import: the serial path must not drag the runtime
            # package in (and core <-> runtime would cycle at import).
            from ..runtime import sharedmem
            fanout = sharedmem.fanout_ready(net, parallel, shared,
                                            delay)
        if fanout:
            base = dict(sources=landmarks, hop_limit=hop_limit,
                        avoid_edges=avoid_edges)
            forward_hops, backward_hops = sharedmem.fanout_kbfs(
                net, shared, parallel,
                [dict(base, direction="out",
                      phase="kBFS-forward(L5.5)"),
                 dict(base, direction="in",
                      phase="kBFS-backward(L5.5)")],
                site=_scale.SITE_LANDMARK_KBFS)
        else:
            forward_hops = multi_source_hop_bfs(
                net, landmarks, hop_limit, direction="out",
                avoid_edges=avoid_edges, delay=delay,
                phase="kBFS-forward(L5.5)")
            backward_hops = multi_source_hop_bfs(
                net, landmarks, hop_limit, direction="in",
                avoid_edges=avoid_edges, delay=delay,
                phase="kBFS-backward(L5.5)")

        # Each landmark l_b broadcasts its hop distance *from* every l_a
        # (which it learned as a vertex in the forward BFS).
        messages: Dict[int, list] = {
            l_b: [("pair", a, b, forward_hops[a][l_b]) for a in range(k)]
            for b, l_b in enumerate(landmarks)
        }
        pairs = broadcast_messages(net, tree, messages,
                                   phase="pair-broadcast(L2.4)")
        pair_hops = [[INF] * k for _ in range(k)]
        for _, payload in pairs:
            _, a, b, hops = payload
            pair_hops[a][b] = hops

        closure = landmark_closure(pair_hops, hops_to_length)

        # Local completion (Lemma 5.6 and its forward mirror): every
        # vertex stitches its hop-bounded distances with the closure.
        # Hop->length conversions are hoisted into per-landmark length
        # rows once; sums against an INF operand can never undercut a
        # finite candidate, so the guarded inner branches collapse to
        # plain min-scans over precomputed rows.
        from_len = [[hops_to_length(h) if h < INF else INF
                     for h in forward_hops[a]] for a in range(k)]
        to_len = [[hops_to_length(h) if h < INF else INF
                   for h in backward_hops[a]] for a in range(k)]
        # On the vector fabric the min-plus completion runs as int64
        # matrix sweeps (identical values; this is ledger-free local
        # computation, so only value equality is at stake).
        from_landmark, to_landmark = dispatch(
            "landmark_completion", net, closure=closure,
            from_len=from_len, to_len=to_len)
        return LandmarkDistances(
            landmarks, closure, from_landmark, to_landmark)


def _completion_message(
    net: CongestNetwork,
    closure: List[List[int]],
    from_len: List[List[int]],
    to_len: List[List[int]],
) -> Tuple[List[List[int]], List[List[int]]]:
    """The scalar min-plus completion (the registry's fallback lane)."""
    k = len(closure)
    n = net.n
    closure_t = [[closure[mid][a] for mid in range(k)]
                 for a in range(k)]
    from_landmark = [[INF] * n for _ in range(k)]
    to_landmark = [[INF] * n for _ in range(k)]
    for a in range(k):
        row = closure[a]
        col = closure_t[a]
        direct_f = from_len[a]
        direct_t = to_len[a]
        out_f = from_landmark[a]
        out_t = to_landmark[a]
        for v in range(n):
            best_f = direct_f[v]
            best_t = direct_t[v]
            for mid in range(k):
                candidate = row[mid] + from_len[mid][v]
                if candidate < best_f:
                    best_f = candidate
                candidate = to_len[mid][v] + col[mid]
                if candidate < best_t:
                    best_t = candidate
            out_f[v] = clamp_inf(best_f)
            out_t[v] = clamp_inf(best_t)
    return from_landmark, to_landmark
