"""Checkpoints and segment pipelining — Lemmas 5.7, 5.8, 5.9.

P is cut into segments of ⌈n^{2/3}⌉ edges by *checkpoints*
C = {v_0, v_⌈n^{2/3}⌉, v_2⌈n^{2/3}⌉, ..., t}.  Within each segment, a
pipelined prefix-minimum sweep per landmark computes the localized

    M^g[l_j, v] = min_{u : c_g ≤_P u ≤_P v} ( |su| + |u l_j|_{G\\P} )

in O(segment length + |L|) rounds (Lemma 5.7); every segment's full
value M^g[l_j, c_{g+1}] is then broadcast — Õ(n^{1/3}·n^{1/3}) = Õ(n^{2/3})
messages (Lemma 5.8) — and each v_i finishes locally:

    |s l_j ⋄ P[v_i, t]| = min( M^g[l_j, v_i],  min_{x < g} M^x[l_j, c_{x+1}] ).

Lemma 5.9 is the mirror image on the reverse graph for
|l_j t ⋄ P[s, v_{i+1}]|, with the result shifted one hop from v_{i+1} to
v_i at the end (O(|L|) pipelined rounds).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..congest.broadcast import broadcast_messages
from ..congest.dispatch import dispatch
from ..congest.network import CongestNetwork
from ..congest.pipeline import SweepTask, run_path_sweeps
from ..congest.spanning_tree import SpanningTree
from ..congest.words import INF, clamp_inf
from .knowledge import PathKnowledge
from .landmark_distances import LandmarkDistances


def checkpoint_positions(hop_count: int, segment_len: int) -> List[int]:
    """Checkpoint indices 0, seg, 2·seg, ..., h_st (t always last)."""
    if segment_len < 1:
        raise ValueError("segment length must be positive")
    positions = list(range(0, hop_count, segment_len)) + [hop_count]
    return positions


def prefix_min_to_landmarks(
    net: CongestNetwork,
    knowledge: PathKnowledge,
    distances: LandmarkDistances,
    checkpoints: Sequence[int],
    phase: str = "segment-prefix(L5.7)",
) -> List[List[Dict[int, int]]]:
    """Lemma 5.7 — M^g[l_j, v] for every segment g, landmark j, and v.

    Returns ``M[g][j]`` = {position: value} over positions in segment g.
    One pipelined sweep per (segment, landmark), all concurrent.
    """
    path = knowledge.path
    k = distances.count
    # One declarative table per landmark, shared by every segment: at
    # position p the owning vertex locally knows |s v_p| + |v_p l_j|,
    # and the sweep semantics are exactly "min with the local value" —
    # which is what lets the vector fabric batch the whole schedule.
    locals_j = [
        [clamp_inf(knowledge.dist_from_s[pos]
                   + distances.to_landmark[j][path[pos]])
         for pos in range(len(path))]
        for j in range(k)
    ]
    tasks = []
    for g in range(len(checkpoints) - 1):
        left, right = checkpoints[g], checkpoints[g + 1]
        for j in range(k):
            tasks.append(SweepTask(
                key=("M", g, j), start=left, end=right,
                init=locals_j[j][left], local_min=locals_j[j],
                deposit=True))
    results = run_path_sweeps(net, path, tasks, phase=phase)
    table: List[List[Dict[int, int]]] = []
    for g in range(len(checkpoints) - 1):
        table.append([results[("M", g, j)].trace for j in range(k)])
    return table


def suffix_min_from_landmarks(
    net: CongestNetwork,
    knowledge: PathKnowledge,
    distances: LandmarkDistances,
    checkpoints: Sequence[int],
    phase: str = "segment-suffix(L5.9)",
) -> List[List[Dict[int, int]]]:
    """Lemma 5.9's segment stage — the suffix-minimum mirror of Lemma 5.7.

    ``N[g][j]`` = {position: min_{u : pos ≤_P u ≤_P c_{g+1}}
                   ( |l_j u|_{G\\P} + |ut| )} over positions in segment g.
    """
    path = knowledge.path
    k = distances.count
    locals_j = [
        [clamp_inf(distances.from_landmark[j][path[pos]]
                   + knowledge.dist_to_t[pos])
         for pos in range(len(path))]
        for j in range(k)
    ]
    tasks = []
    for g in range(len(checkpoints) - 1):
        left, right = checkpoints[g], checkpoints[g + 1]
        for j in range(k):
            tasks.append(SweepTask(
                key=("N", g, j), start=right, end=left,
                init=locals_j[j][right], local_min=locals_j[j],
                deposit=True))
    results = run_path_sweeps(net, path, tasks, phase=phase)
    table: List[List[Dict[int, int]]] = []
    for g in range(len(checkpoints) - 1):
        table.append([results[("N", g, j)].trace for j in range(k)])
    return table


def finish_distance_tables(
    net: CongestNetwork,
    tree: SpanningTree,
    knowledge: PathKnowledge,
    distances: LandmarkDistances,
    checkpoints: Sequence[int],
    prefix_table: List[List[Dict[int, int]]],
    suffix_table: List[List[Dict[int, int]]],
    phase: str = "segment-combine(L5.8/5.9)",
) -> Dict[str, List[List[int]]]:
    """Broadcast segment summaries and finish Lemmas 5.8 / 5.9 locally.

    Returns ``{"M": M, "N": N}`` with
    ``M[j][i]`` = |s l_j ⋄ P[v_i, t]|  (detour leaves at or before v_i),
    ``N[j][i]`` = |l_j t ⋄ P[s, v_{i+1}]|  (detour rejoins at or after
    v_{i+1}), both stored at v_i for i ∈ [0, h_st − 1]; the one-hop shift
    of N from v_{i+1} to v_i costs |L| pipelined rounds.
    """
    path = knowledge.path
    h = knowledge.hop_count
    k = distances.count
    num_segments = len(checkpoints) - 1
    with net.ledger.phase(phase):
        # Broadcast the full-segment values (Lemma 5.8's O(ℓ·|L|) words).
        # Each origin's batch is built in one extend per segment instead
        # of 2·|L| setdefault probes.
        messages: Dict[int, list] = {}
        for g in range(num_segments):
            left, right = checkpoints[g], checkpoints[g + 1]
            origin_m = path[right]
            origin_n = path[left]
            m_row = prefix_table[g]
            n_row = suffix_table[g]
            messages.setdefault(origin_m, []).extend(
                ("Mseg", g, j, m_row[j][right]) for j in range(k))
            messages.setdefault(origin_n, []).extend(
                ("Nseg", g, j, n_row[j][left]) for j in range(k))
        records = broadcast_messages(net, tree, messages,
                                     phase="segment-broadcast(L2.4)")
        m_seg = [[INF] * k for _ in range(num_segments)]
        n_seg = [[INF] * k for _ in range(num_segments)]
        for _, payload in records:
            tag, g, j, value = payload
            if tag == "Mseg":
                m_seg[g][j] = value
            else:
                n_seg[g][j] = value

        # Prefix/suffix minima over whole segments (local, via broadcast
        # data known at every vertex).
        m_before = [[INF] * k for _ in range(num_segments)]
        for g in range(1, num_segments):
            for j in range(k):
                m_before[g][j] = min(m_before[g - 1][j], m_seg[g - 1][j])
        n_after = [[INF] * k for _ in range(num_segments)]
        for g in range(num_segments - 2, -1, -1):
            for j in range(k):
                n_after[g][j] = min(n_after[g + 1][j], n_seg[g + 1][j])

        segment_of = _segment_of_positions(checkpoints, h)

        m_final = [[INF] * h for _ in range(k)]
        for i in range(h):
            g = segment_of[i]
            for j in range(k):
                m_final[j][i] = min(
                    prefix_table[g][j][i], m_before[g][j])

        # N is naturally available at v_{i+1}; compute it there, then
        # shift one hop left, pipelining the |L| values per edge.
        n_at_vertex = [[INF] * (h + 1) for _ in range(k)]
        for pos in range(1, h + 1):
            # v_{i+1} with i+1 == pos serves the edge i = pos−1, which
            # lies in segment segment_of[pos−1]; that segment's suffix
            # trace contains position pos.
            g = segment_of[pos - 1]
            for j in range(k):
                n_at_vertex[j][pos] = min(
                    suffix_table[g][j].get(pos, INF), n_after[g][j])

        with net.ledger.phase("N-shift"):
            # The bulk charge assumes every token is the 3-word
            # ("Nshift", j, int); the weighted Theorem 3 pipeline
            # shifts exact Fraction lengths (2 words each), so any
            # non-int value sends the whole shift down the message
            # path.  Both lanes charge within this open phase.
            n_final = dispatch("n_shift", net, path=path,
                               rows=n_at_vertex, hop_count=h)
        return {"M": m_final, "N": n_final}


def _n_shift_message(
    net: CongestNetwork,
    path: Sequence[int],
    rows: List[List[int]],
    hop_count: int,
) -> List[List[int]]:
    """The per-row one-hop shift rounds (the registry's fallback lane).

    Path vertices are pairwise distinct (P is a shortest path), so each
    round's outbox is one message per path vertex — built directly, no
    setdefault probes.  Every round moves exactly ``hop_count``
    three-word tokens one hop leftward.
    """
    h = hop_count
    n_final = [[INF] * h for _ in range(len(rows))]
    for j, row in enumerate(rows):
        outbox: Dict[int, list] = {
            path[pos]: [(path[pos - 1], ("Nshift", j, row[pos]))]
            for pos in range(1, h + 1)
        }
        net.exchange(outbox)
        n_final[j][:] = row[1:h + 1]
    return n_final


def _segment_of_positions(checkpoints: Sequence[int],
                          hop_count: int) -> List[int]:
    """segment_of[i] = index g of the segment containing edge
    (v_i, v_{i+1}), i.e. c_g ≤ i < i+1 ≤ c_{g+1}."""
    segment_of = [0] * hop_count
    g = 0
    for i in range(hop_count):
        while i >= checkpoints[g + 1]:
            g += 1
        segment_of[i] = g
    return segment_of
