"""Command-line interface: ``python -m repro <command>``.

Commands
--------
solve
    Run the Theorem 1 solver (or Theorem 3 with --epsilon) on a
    generated instance and print the per-edge replacement lengths plus
    the round breakdown.
compare
    Run Theorem 1, the MR24b baseline, and the trivial baseline on the
    same instance and print the Table-1-style row.
lower-bound
    Build G(k, d, p, φ, M, x) for random (M, x), verify Lemma 6.8, and
    run the disjointness reduction.
suite
    The experiment runtime: ``suite list`` shows the scenario catalog,
    ``suite run`` executes scenario cells in parallel against the
    content-addressed result cache, ``suite diff`` compares two run
    manifests.
query
    Answer one (s, t, failed-edge) replacement-path query from a
    precomputed oracle (build once, O(1) per hit).
serve
    The query-serving tier: ``serve bench`` drives a generated
    workload through the sharded oracle service and reports
    queries/sec, latency percentiles, hit ratio, and solves saved by
    batching; ``serve daemon`` runs the long-lived worker-process
    tier (warm once, heartbeat health, drain on stop); ``serve
    load`` drives open/closed-loop load through the daemon's
    front-end with p50/p95/p99 SLO gates.
trace
    Trace tooling over the JSONL artifacts written by ``suite run
    --trace`` (and the benches' ``--trace``): ``trace summary`` joins
    per-phase wall time with ledger rounds and prints the
    fallback-reason histogram; ``trace diff`` compares two traces
    phase by phase.
kernels
    ``kernels list`` prints the primitive registry as the dispatch
    table (primitive × fabric × declared constraints) that
    ``repro.congest.dispatch`` executes; ``--json`` dumps the full
    registry machine-readably.
info
    Print the library version and the experiment index.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from . import __version__
from .analysis import format_table
from .congest.words import INF


def _build_instance(args):
    from .graphs import (
        grid_instance,
        layered_instance,
        path_with_chords_instance,
        random_instance,
    )
    family = args.family
    if family == "random":
        return random_instance(args.n, seed=args.seed,
                               weighted=args.weighted)
    if family == "chords":
        return path_with_chords_instance(
            max(2, args.n // 2), seed=args.seed, weighted=args.weighted,
            overlay_hub=True)
    if family == "grid":
        cols = max(2, args.n // 4)
        return grid_instance(4, cols)
    if family == "layered":
        width = 4
        layers = max(2, args.n // width)
        return layered_instance(layers, width, seed=args.seed,
                                weighted=args.weighted)
    raise SystemExit(f"unknown family {family!r}")


def cmd_solve(args) -> int:
    instance = _build_instance(args)
    print(f"instance {instance.name}: n={instance.n} m={instance.m} "
          f"h_st={instance.hop_count}")
    if args.epsilon is not None:
        from .approx.apx_rpaths import solve_apx_rpaths
        report = solve_apx_rpaths(instance, epsilon=args.epsilon,
                                  seed=args.seed)
        print(f"(1+{args.epsilon})-Apx-RPaths (Theorem 3): "
              f"{report.rounds} rounds, {report.scale_count} scales")
    else:
        if instance.weighted:
            raise SystemExit(
                "weighted instance needs --epsilon (Theorem 3)")
        from .core.rpaths import solve_rpaths
        report = solve_rpaths(instance, seed=args.seed)
        print(f"RPaths (Theorem 1): {report.rounds} rounds, "
              f"|L|={report.landmark_count}, zeta={report.zeta}")
    shown = ", ".join(
        "inf" if (x == float('inf') or x >= INF) else str(x)
        for x in report.lengths[:20])
    more = " ..." if len(report.lengths) > 20 else ""
    print(f"lengths: [{shown}{more}]")
    if args.breakdown:
        print(report.ledger.report())
    if args.check:
        from .baselines import replacement_lengths
        truth = replacement_lengths(instance)
        if args.epsilon is None:
            ok = report.lengths == truth
        else:
            eps = args.epsilon
            ok = all(
                (t >= INF and x == float("inf")) or
                (t < INF and t - 1e-9 <= x <= (1 + eps) * t + 1e-9)
                for x, t in zip(report.lengths, truth))
        print(f"oracle check: {'OK' if ok else 'MISMATCH'}")
        return 0 if ok else 1
    return 0


def cmd_compare(args) -> int:
    from .analysis import run_table1_cell
    instance = _build_instance(args)
    runs = run_table1_cell(instance, seed=args.seed)
    rows = [[r.algorithm, r.rounds, r.max_link_words,
             "OK" if r.correct else "WRONG"] for r in runs]
    print(format_table(
        ["algorithm", "rounds", "max link words", "exact"],
        rows, title=f"{instance.name}: n={instance.n} "
                    f"h_st={instance.hop_count}"))
    return 0 if all(r.correct for r in runs) else 1


def cmd_lower_bound(args) -> int:
    from .lowerbound import (
        build_hard_instance,
        decide_disjointness_via_two_sisp,
        verify_correspondence,
    )
    rng = random.Random(args.seed)
    k = args.k
    matrix = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
    x = [rng.randint(0, 1) for _ in range(k * k)]
    hard = build_hard_instance(k, args.d, args.p, matrix, x)
    report = verify_correspondence(hard)
    print(f"G(k={k}, d={args.d}, p={args.p}): n={hard.n}, "
          f"L_opt={report.optimal_length}")
    print(f"Lemma 6.8 dichotomy holds: {report.holds} "
          f"({report.hit_count}/{k * k} minimal edges)")
    xx = [rng.randint(0, 1) for _ in range(4)]
    yy = [rng.randint(0, 1) for _ in range(4)]
    red = decide_disjointness_via_two_sisp(
        xx, yy, 2, use_oracle_knowledge=True)
    print(f"reduction demo: disj({xx},{yy}) = {red.expected}, "
          f"decoded {red.decided} in {red.rounds} rounds "
          f"({'OK' if red.correct else 'MISMATCH'})")
    return 0 if report.holds and red.correct else 1


def cmd_suite_list(args) -> int:
    from .runtime import all_scenarios
    rows = []
    for scen in all_scenarios():
        rows.append([
            scen.name,
            len(scen.cells()),
            len(scen.cells(smoke=True)),
            ",".join(scen.tags) or "-",
            scen.description,
        ])
    print(format_table(
        ["scenario", "cells", "smoke", "tags", "description"], rows,
        title="registered scenarios"))
    return 0


def cmd_suite_run(args) -> int:
    from .runtime import (
        ResultStore,
        default_jobs,
        format_suite_report,
        run_suite,
    )
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    try:
        report = run_suite(
            names=args.scenario or None,
            jobs=args.jobs if args.jobs is not None else default_jobs(),
            smoke=args.smoke,
            use_cache=not args.no_cache,
            store=store,
            timeout=args.timeout,
            label=args.label,
            record=not args.no_record,
            fabric=args.fabric,
            trace=args.trace,
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    title = ("suite results (smoke)" if args.smoke else "suite results")
    print(format_suite_report(report, title=title,
                              durations=args.durations))
    if not report.ok:
        for r in report.results:
            if not r.ok:
                print(f"FAILED {r.spec.label}: {r.status} {r.error}")
    if not report.all_correct:
        for r in report.results:
            if r.correct is False:
                print(f"INCORRECT {r.spec.label}")
    return 0 if (report.ok and report.all_correct) else 1


def cmd_suite_diff(args) -> int:
    from .runtime import diff_results
    from .runtime.store import ResultStore
    try:
        old = ResultStore.load_run(args.old)
        new = ResultStore.load_run(args.new)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot read run manifest: {exc!r}")
    report = diff_results(old, new)
    print(f"diff {args.old} -> {args.new}: {report.summary()}")
    for identity in report.removed:
        print(f"  removed: {identity}")
    for identity in report.added:
        print(f"  added:   {identity}")
    for cell in report.changed:
        print(f"  changed: {cell.identity}")
        for metric, (a, b) in sorted(cell.changed.items()):
            print(f"           {metric}: {a} -> {b}")
    return 0 if report.clean else 1


class _QueryTimeout(Exception):
    pass


def _query_alarm(signum, frame):  # pragma: no cover - signal path
    raise _QueryTimeout()


def cmd_query(args) -> int:
    import signal
    import threading

    from .serve import ReplacementPathOracle, centralized_truth
    instance = _build_instance(args)
    solver = args.solver
    if instance.weighted and solver == "theorem1":
        solver = "centralized"  # Theorem 1 targets unweighted graphs
    s = instance.s if args.source is None else args.source
    t = instance.t if args.target is None else args.target
    if args.edge is not None:
        edge = (args.edge[0], args.edge[1])
    else:
        edge = instance.path_edges()[
            args.fail_index % instance.hop_count]
    # The deadline covers the expensive part — the cold oracle build
    # plus the query itself — with the executor's in-process SIGALRM
    # discipline, so a too-slow build returns a structured ``timeout``
    # outcome instead of hanging the terminal.  SIGALRM only exists on
    # POSIX and only works from the main thread; anywhere else we run
    # without a deadline and *say so* with a structured
    # ``timeout_unsupported`` outcome instead of crashing in
    # ``signal.signal``.
    alarm_capable = (hasattr(signal, "SIGALRM")
                     and threading.current_thread()
                     is threading.main_thread())
    use_alarm = args.timeout is not None and alarm_capable
    timeout_unsupported = args.timeout is not None and not alarm_capable
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _query_alarm)
        old_timer = signal.setitimer(signal.ITIMER_REAL, args.timeout)
    try:
        oracle = ReplacementPathOracle.build(
            instance, solver=solver, seed=args.seed)
        answer = oracle.query(s, t, edge)
    except _QueryTimeout:
        if args.json:
            import json
            print(json.dumps({
                "instance": instance.name,
                "n": instance.n,
                "m": instance.m,
                "h_st": instance.hop_count,
                "solver": solver,
                "query": {"s": s, "t": t,
                          "edge": [edge[0], edge[1]]},
                "outcome": "timeout",
                "timeout_seconds": args.timeout,
            }, indent=2, sort_keys=True))
        else:
            print(f"instance {instance.name}: n={instance.n} "
                  f"m={instance.m} h_st={instance.hop_count}")
            print(f"query timed out after {args.timeout:g}s "
                  "(oracle build + query exceeded the deadline)")
        return 2
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, *old_timer)
            signal.signal(signal.SIGALRM, old_handler)
    ok = None
    if args.check:
        ok = answer.length == centralized_truth(instance, s, t, edge)
    if args.json:
        import json
        print(json.dumps({
            "instance": instance.name,
            "n": instance.n,
            "m": instance.m,
            "h_st": instance.hop_count,
            "solver": solver,
            "build_rounds": oracle.build_rounds,
            "query": {"s": s, "t": t,
                      "edge": [edge[0], edge[1]]},
            "outcome": ("timeout_unsupported" if timeout_unsupported
                        else "ok"),
            "timeout_enforced": bool(use_alarm),
            "length": (None if answer.length >= INF
                       else answer.length),
            "kind": answer.kind,
            "check": ok,
        }, indent=2, sort_keys=True))
    else:
        print(f"instance {instance.name}: n={instance.n} "
              f"m={instance.m} h_st={instance.hop_count}")
        if timeout_unsupported:
            print(f"note: --timeout {args.timeout:g} requested but "
                  "SIGALRM is unavailable here (non-POSIX platform or "
                  "non-main thread); ran without a deadline")
        print(f"oracle: solver={solver}, build cost "
              f"{oracle.build_rounds} rounds (paid once, amortized "
              "over every query)")
        print(f"query d({s},{t}) avoiding ({edge[0]},{edge[1]}): "
              f"{answer.display_length()}  [{answer.kind}]")
        if ok is not None:
            print(f"oracle check: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok is not False else 1


def cmd_mutate(args) -> int:
    """Replay a seeded mutation stream against one instance.

    Each step draws a batch from the chosen profile, applies it
    through :func:`repro.dynamic.apply_mutations` (epoch bump + P
    re-derivation), validates the successor instance, and reports the
    applied/skipped breakdown — the CLI face of the dynamic-graphs
    subsystem.
    """
    from .dynamic import MutationStream

    instance = _build_instance(args)
    stream = MutationStream(seed=args.mutation_seed)
    profile_kwargs = {
        "burst": {"count": args.burst_size},
        "storm": {"fraction": args.fraction},
        "regional": {"radius": args.radius,
                     "fraction": args.fraction},
        "maintenance": {"window": args.window},
    }[args.profile]
    steps = []
    failures = []
    current = instance
    for step in range(args.steps):
        kwargs = dict(profile_kwargs)
        if args.profile == "maintenance":
            kwargs["step"] = step
        result = stream.step(current, profile=args.profile, **kwargs)
        current = result.instance
        try:
            current.validate()
        except Exception as exc:  # InvalidInstanceError et al.
            failures.append(f"step {step}: successor instance "
                            f"invalid: {exc}")
        row = result.as_metrics()
        row["step"] = step
        steps.append(row)
    if args.json:
        import json
        print(json.dumps({
            "instance": instance.name,
            "n": instance.n,
            "m": instance.m,
            "profile": args.profile,
            "seed": args.mutation_seed,
            "steps": steps,
            "final_epoch": current.topology_version,
            "final_m": current.m,
            "final_hop_count": current.hop_count,
            "failures": failures,
        }, indent=2, sort_keys=True))
    else:
        rows = [[r["step"], r["epoch"], r["applied"], r["skipped"],
                 "yes" if r["path_changed"] else "no"]
                for r in steps]
        print(format_table(
            ["step", "epoch", "applied", "skipped", "path changed"],
            rows,
            title=f"mutation stream: {args.profile} on "
                  f"{instance.name or args.family} (n={instance.n}, "
                  f"seed={args.mutation_seed})"))
        print(f"final: epoch {current.topology_version}, m={current.m}"
              f" (was {instance.m}), |P|={current.hop_count} hops "
              f"(was {instance.hop_count})")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 0 if not failures else 1


def cmd_store_gc(args) -> int:
    """Prune unreachable objects from the result store."""
    from .runtime.store import ResultStore

    store = ResultStore(args.cache_dir)
    report = store.gc(dry_run=args.dry_run)
    if args.json:
        import json
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    verb = "would prune" if args.dry_run else "pruned"
    print(f"store gc ({store.root}): scanned {report['scanned']}, "
          f"kept {report['kept']}, {verb} {report['pruned']} "
          f"({report['bytes']} bytes)")
    for reason, count in sorted(report["reasons"].items()):
        if count:
            print(f"  {reason}: {count}")
    if args.verbose:
        for victim in report["victims"]:
            print(f"  {verb}: {victim['object']} "
                  f"[{victim['reason']}] {victim['detail']}")
    return 0


def cmd_serve_bench(args) -> int:
    import tempfile
    import time

    from .graphs.generators import random_instance
    from .runtime.store import ResultStore
    from .serve import (
        ShardedQueryService,
        generate_workload,
        hit_ratio,
        latency_summary_ms,
        verify_against_centralized,
    )
    instances = [
        random_instance(args.n, seed=args.seed + i)
        for i in range(args.instances)
    ]
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    scratch = None
    if store is None and args.jobs and args.jobs > 1:
        # Parallel workers rebuild their shards from scratch; without
        # a spill store the parent's warm() could not reach them and
        # every timed window would pay full oracle construction.  A
        # throwaway store keeps the steady-state numbers honest.
        scratch = tempfile.TemporaryDirectory(prefix="repro-serve-")
        store = ResultStore(scratch.name)
    kinds = args.workload or ["uniform", "zipf", "adversarial",
                              "mixed"]
    rows = []
    records = []
    failures = 0
    for kind in kinds:
        service = ShardedQueryService(
            instances, shards=args.shards, capacity=args.capacity,
            store=store, solver=args.solver, build_seed=args.seed)
        service.warm()  # steady state: oracles built before the clock
        queries = []
        for i, inst in enumerate(instances):
            queries.extend(generate_workload(
                kind, inst, args.queries // len(instances),
                seed=args.seed + 17 * i))
        start = time.perf_counter()
        if args.jobs and args.jobs > 1:
            report = service.serve_parallel(queries, jobs=args.jobs)
        else:
            report = service.serve(queries)
        wall = time.perf_counter() - start
        correct = verify_against_centralized(instances, report.answers)
        failures += 0 if correct else 1
        totals = report.totals()
        service_stats = service.stats()
        # Per-query latency percentiles: one-at-a-time serving over a
        # warm sample — the batch-timed run above measures throughput,
        # this measures what a single client waits.  Stats were
        # snapshotted first so the sample does not inflate them.
        sample = queries[:min(len(queries), args.latency_sample)]
        per_query = []
        for q in sample:
            t0 = time.perf_counter()
            service.serve([q])
            per_query.append(time.perf_counter() - t0)
        latency = latency_summary_ms(per_query)
        rows.append([
            kind,
            report.queries,
            f"{report.queries / wall:.0f}",
            f"{latency['p50']:.2f}",
            f"{latency['p95']:.2f}",
            f"{latency['p99']:.2f}",
            f"{hit_ratio(report.answers):.2f}",
            totals.batch_solves,
            totals.solves_saved,
            f"{wall:.2f}s",
            "OK" if correct else "WRONG",
        ])
        records.append({
            "workload": kind,
            "queries": report.queries,
            "queries_per_sec": round(report.queries / wall, 1),
            "latency_ms": {k: round(v, 4)
                           for k, v in latency.items()},
            "latency_sample": len(sample),
            "hit_ratio": round(hit_ratio(report.answers), 4),
            "wall_seconds": round(wall, 4),
            "correct": correct,
            "jobs": report.jobs,
            "totals": totals.as_metrics(),
            "service": service_stats,
        })
    if args.json:
        import json
        print(json.dumps({
            "config": {
                "n": args.n,
                "instances": args.instances,
                "shards": args.shards,
                "capacity": args.capacity,
                "jobs": args.jobs,
                "solver": args.solver,
                "seed": args.seed,
            },
            "workloads": records,
        }, indent=2, sort_keys=True))
    else:
        print(format_table(
            ["workload", "queries", "queries/s", "p50 ms", "p95 ms",
             "p99 ms", "hit ratio", "batch solves", "solves saved",
             "wall", "correct"],
            rows,
            title=f"serve bench: {args.instances} instances "
                  f"(n={args.n}), {args.shards or 'auto'} shards, "
                  f"jobs={args.jobs}"))
    if scratch is not None:
        scratch.cleanup()
    return 0 if failures == 0 else 1


def _daemon_catalog(args):
    """The instance catalog the daemon serves (stable names)."""
    from .graphs.generators import random_instance
    return [
        random_instance(args.n, seed=args.seed + i,
                        name=f"serve-{args.n}-{args.seed + i}")
        for i in range(args.instances)
    ]


def _start_daemon(args, instances):
    from .runtime.store import ResultStore
    from .serve import ServeDaemon
    store = ResultStore(args.cache_dir) if args.cache_dir else None
    daemon = ServeDaemon(
        instances, workers=args.workers, capacity=args.capacity,
        store=store, solver=args.solver, build_seed=args.seed)
    return daemon.start()


def _dump_stats(args, daemon, extra=None) -> None:
    """--stats-json / --prometheus operator dumps, shared by both
    daemon verbs (the ``repro serve stats`` surface of the issue)."""
    payload = daemon.stats()
    if extra:
        payload.update(extra)
    if getattr(args, "stats_json", None):
        import json
        with open(args.stats_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"stats written to {args.stats_json}")
    if getattr(args, "prometheus", False):
        print(daemon.exposition())


def cmd_serve_daemon(args) -> int:
    from .serve import ServeFrontend, generate_workload, run_queries
    instances = _daemon_catalog(args)
    print(f"starting daemon: {len(instances)} instances "
          f"(n={args.n}), solver={args.solver}")
    daemon = _start_daemon(args, instances)
    try:
        print(f"daemon up: {daemon.workers} workers, instances "
              f"routed: {', '.join(daemon.instance_keys)}")
        frontend = ServeFrontend(
            daemon, max_queue=args.max_queue,
            default_timeout=args.timeout,
            max_inflight=args.max_inflight)
        try:
            queries = []
            for i, inst in enumerate(instances):
                queries.extend(generate_workload(
                    "mixed", inst, args.selfcheck,
                    seed=args.seed + 31 * i))
            results = run_queries(frontend, queries)
            bad = [r for r in results if not r.ok]
            print(f"self-check: {len(results) - len(bad)}/"
                  f"{len(results)} ok")
            totals = daemon.stats()["totals"]
            print(f"served {totals['queries']} queries; "
                  f"{totals['oracle_builds']} oracle builds, "
                  f"{totals['lru_hits']} LRU hits, "
                  f"{totals['batch_solves']} batch solves")
            return_code = 0 if not bad else 1
        finally:
            frontend.close()
    finally:
        _dump_stats(args, daemon)
        daemon.stop()
    print("daemon stopped (drained)")
    return return_code


def _check_dynamic_telemetry(failures) -> None:
    """Append closed-enum violations (serving + dynamic) to failures."""
    from .telemetry import snapshot_counters, unknown_serving_labels
    from .telemetry.dynamic import unknown_dynamic_labels
    counters = snapshot_counters()["counters"]
    unknown = unknown_serving_labels(counters)
    if unknown:
        failures.append("unknown serving telemetry labels: "
                        + ", ".join(unknown))
    unknown = unknown_dynamic_labels(counters)
    if unknown:
        failures.append("unknown dynamic telemetry labels: "
                        + ", ".join(unknown))


def _serve_load_chaos(args, instances) -> int:
    """``repro serve load --chaos``: storm + kill + stall, then the
    quiesced bit-identical convergence gate."""
    from .dynamic import run_chaos
    from .runtime.store import ResultStore

    store = ResultStore(args.cache_dir) if args.cache_dir else None
    print(f"chaos: {len(instances)} instances (n={args.n}), "
          f"{args.chaos_duration:g}s storm, kills={args.kills}, "
          f"stalls={args.stalls}, bursts={args.bursts}",
          file=sys.stderr)
    report = run_chaos(
        instances, duration=args.chaos_duration, seed=args.seed,
        workers=args.workers or 2, solver=args.solver, store=store,
        kills=args.kills, stalls=args.stalls,
        mutation_bursts=args.bursts, burst_size=args.burst_size,
        max_staleness=(8 if args.max_staleness is None
                       else args.max_staleness),
        query_timeout=args.timeout)
    failures = []
    if not report.converged:
        detail = "; ".join(report.mismatches[:5]) or (
            "no fresh answers verified"
            if report.verified == 0
            else f"{report.failed_workers} workers failed for good")
        failures.append(f"chaos did not converge: {detail}")
    if (args.max_p95_ms is not None
            and report.latency_ms.get("p95", 0.0) > args.max_p95_ms):
        failures.append(
            f"chaos: served p95 {report.latency_ms['p95']:.2f}ms > "
            f"floor {args.max_p95_ms:.2f}ms")
    if args.check_telemetry:
        _check_dynamic_telemetry(failures)
    if args.json:
        import json
        payload = report.as_json()
        payload["failures"] = failures
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"chaos run: {report.queries_sent} queries in "
              f"{report.duration:.1f}s, outcomes {report.outcomes}")
        print(f"injected: {report.mutation_batches} mutation batches "
              f"({report.mutations_applied} applied), "
              f"{report.kills} kills ({report.restarts} restarts), "
              f"{report.stalls} stalls")
        print(f"epochs after storm: {report.epochs}")
        print(f"quiesce: {report.verified} fresh answers verified, "
              f"{len(report.mismatches)} mismatches -> "
              f"{'CONVERGED' if report.converged else 'DIVERGED'}")
        if report.latency_ms:
            print(f"served latency: p50 "
                  f"{report.latency_ms.get('p50', 0):.2f}ms, p95 "
                  f"{report.latency_ms.get('p95', 0):.2f}ms, p99 "
                  f"{report.latency_ms.get('p99', 0):.2f}ms")
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 0 if not failures else 1


def cmd_serve_load(args) -> int:
    from .serve import (
        ServeFrontend,
        ShardedQueryService,
        generate_workload,
        run_load,
    )
    instances = _daemon_catalog(args)
    if args.chaos:
        return _serve_load_chaos(args, instances)
    kinds = args.workload or ["uniform", "zipf", "adversarial",
                              "mixed"]
    daemon = _start_daemon(args, instances)
    reports = []
    failures = []
    try:
        frontend = ServeFrontend(
            daemon, max_queue=args.max_queue,
            default_timeout=args.timeout,
            max_inflight=args.max_inflight)
        try:
            direct = None
            if args.check:
                # The bit-identity gate: every daemon answer must
                # match the library service on the same catalog.
                direct = ShardedQueryService(
                    instances, solver=args.solver,
                    build_seed=args.seed)
            for kind in kinds:
                queries = []
                for i, inst in enumerate(instances):
                    queries.extend(generate_workload(
                        kind, inst, args.queries // len(instances),
                        seed=args.seed + 17 * i))
                results, report = run_load(
                    frontend, queries, mode=args.mode,
                    concurrency=args.concurrency, qps=args.qps,
                    timeout=args.timeout,
                    max_staleness=args.max_staleness)
                row = report.as_json()
                row["workload"] = kind
                if report.served != report.sent:
                    unhappy = {k: v for k, v in report.outcomes.items()
                               if k not in ("ok", "stale")}
                    if args.mode == "closed":
                        failures.append(
                            f"{kind}: non-ok outcomes {unhappy}")
                if direct is not None:
                    mismatches = 0
                    for res in results:
                        if not res.ok:
                            continue
                        q = res.query
                        truth = direct.query(q.instance, q.s, q.t,
                                             q.edge)
                        if truth.length != res.answer.length:
                            mismatches += 1
                    row["mismatches"] = mismatches
                    if mismatches:
                        failures.append(
                            f"{kind}: {mismatches} answers differ "
                            "from ShardedQueryService")
                if (args.max_p95_ms is not None and report.ok > 0
                        and report.latency_ms["p95"] > args.max_p95_ms):
                    failures.append(
                        f"{kind}: p95 {report.latency_ms['p95']:.2f}ms"
                        f" > floor {args.max_p95_ms:.2f}ms")
                reports.append(row)
        finally:
            frontend.close()
    finally:
        stats = daemon.stats()
        _dump_stats(args, daemon, extra={"load": reports})
        daemon.stop()
    if args.check_telemetry:
        _check_dynamic_telemetry(failures)
    if args.json:
        import json
        print(json.dumps({
            "config": {
                "n": args.n,
                "instances": args.instances,
                "workers": daemon.workers,
                "mode": args.mode,
                "qps": args.qps,
                "concurrency": args.concurrency,
                "solver": args.solver,
                "seed": args.seed,
            },
            "workloads": reports,
            "totals": stats["totals"],
            "restarts": stats["restarts"],
            "failures": failures,
        }, indent=2, sort_keys=True))
    else:
        rows = [[
            r["workload"], r["sent"], r["ok"],
            f"{r['achieved_qps']:.0f}",
            f"{r['latency_ms'].get('p50', 0):.2f}",
            f"{r['latency_ms'].get('p95', 0):.2f}",
            f"{r['latency_ms'].get('p99', 0):.2f}",
            r.get("mismatches", "-"),
        ] for r in reports]
        print(format_table(
            ["workload", "sent", "ok", "qps", "p50 ms", "p95 ms",
             "p99 ms", "mismatches"], rows,
            title=f"serve load: {args.instances} instances "
                  f"(n={args.n}), mode={args.mode}, "
                  f"workers={daemon.workers}"))
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 0 if not failures else 1


def _resolve_trace_path(path: str):
    """``latest`` resolves to the newest trace dir under the store."""
    import os
    if path != "latest":
        return path
    from .telemetry import latest_trace_dir
    root = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    found = latest_trace_dir(root)
    if found is None:
        raise SystemExit(
            f"error: no trace directories under {root}/traces "
            "(run 'repro suite run --trace' first)")
    return found


def cmd_trace_summary(args) -> int:
    from .telemetry import format_summary, load_summary
    path = _resolve_trace_path(args.path)
    try:
        summary = load_summary(path, top=args.top)
    except (OSError, FileNotFoundError) as exc:
        raise SystemExit(f"error: cannot read trace: {exc}")
    if args.json:
        import json
        print(json.dumps(summary.as_json(), indent=2, sort_keys=True))
    else:
        print(format_summary(summary, title=f"trace {path}"))
    if args.check_reasons:
        unknown = summary.unknown_reasons()
        if unknown:
            print("error: unknown fallback reasons/kernels: "
                  + ", ".join(unknown), file=sys.stderr)
            return 1
    return 0


def cmd_trace_diff(args) -> int:
    from .telemetry import diff_summaries, format_diff, load_summary
    try:
        old = load_summary(_resolve_trace_path(args.old))
        new = load_summary(_resolve_trace_path(args.new))
    except (OSError, FileNotFoundError) as exc:
        raise SystemExit(f"error: cannot read trace: {exc}")
    diff = diff_summaries(old, new)
    if args.json:
        import json
        print(json.dumps(diff.as_json(), indent=2, sort_keys=True))
    else:
        print(format_diff(diff, threshold=args.threshold))
    return 1 if diff.regressions(args.threshold) else 0


def cmd_kernels_list(args) -> int:
    from .congest.dispatch import (
        GLOBAL_GATES,
        registry_json,
        table_rows,
    )
    if args.json:
        import json
        print(json.dumps(registry_json(), indent=2, sort_keys=True))
        return 0
    print(format_table(
        ["primitive", "lemma", "reference/fast/strict", "vector",
         "vector constraints (fallback reasons)"],
        table_rows(),
        title="primitive dispatch table (repro.congest.dispatch)"))
    gates = ", ".join(g.reason for g in GLOBAL_GATES)
    print(f"global gates (checked first, every primitive): {gates}")
    print("reference/fast/strict run the message engine atop their "
          "exchange fabric; vector runs the array kernel when every "
          "gate and constraint passes, else falls back to the message "
          "engine counting the first failing constraint's reason.")
    return 0


def cmd_info(_args) -> int:
    from .runtime import scenario_names
    print(f"repro {__version__} — reproduction of 'Optimal Distributed "
          "Replacement Paths' (PODC 2025)")
    print("experiments: see DESIGN.md (layout + runtime quickstart); "
          "benches under benchmarks/")
    names = scenario_names()
    print(f"scenario catalog ({len(names)}): {', '.join(names)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_instance_args(p):
        p.add_argument("--family", default="random",
                       choices=["random", "chords", "grid", "layered"])
        p.add_argument("--n", type=int, default=100,
                       help="target instance size")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--weighted", action="store_true")

    p_solve = sub.add_parser("solve", help="run the paper's solver")
    add_instance_args(p_solve)
    p_solve.add_argument("--epsilon", type=float, default=None,
                         help="use Theorem 3 with this ε")
    p_solve.add_argument("--breakdown", action="store_true",
                         help="print the per-phase round ledger")
    p_solve.add_argument("--check", action="store_true",
                         help="verify against the centralized oracle")
    p_solve.set_defaults(func=cmd_solve)

    p_cmp = sub.add_parser("compare",
                           help="Theorem 1 vs MR24b vs trivial")
    add_instance_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_lb = sub.add_parser("lower-bound",
                          help="Section 6 constructions + reduction")
    p_lb.add_argument("--k", type=int, default=2)
    p_lb.add_argument("--d", type=int, default=2)
    p_lb.add_argument("--p", type=int, default=1)
    p_lb.add_argument("--seed", type=int, default=0)
    p_lb.set_defaults(func=cmd_lower_bound)

    p_suite = sub.add_parser(
        "suite", help="scenario registry + parallel experiment engine")
    suite_sub = p_suite.add_subparsers(dest="suite_command",
                                       required=True)

    p_list = suite_sub.add_parser("list", help="show the catalog")
    p_list.set_defaults(func=cmd_suite_list)

    p_run = suite_sub.add_parser(
        "run", help="run scenario cells (parallel, cached)")
    p_run.add_argument("--scenario", action="append", default=[],
                       help="scenario name (repeatable; default: all)")
    p_run.add_argument("--jobs", type=int, default=None,
                       help="parallel worker processes "
                            "(default: one per CPU)")
    p_run.add_argument("--smoke", action="store_true",
                       help="tiny parameter points only (CI-sized)")
    from .congest.network import FABRICS
    p_run.add_argument("--fabric", default=None,
                       choices=list(FABRICS),
                       help="force every cell onto one exchange engine "
                            "(cached separately per fabric; default: "
                            "each scenario's own choice)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="ignore and do not update the "
                            "content-addressed result cache "
                            "(run manifests are still recorded)")
    p_run.add_argument("--no-record", action="store_true",
                       help="do not write a run manifest")
    p_run.add_argument("--cache-dir", default=None,
                       help="result store root (default .repro-cache "
                            "or $REPRO_CACHE_DIR)")
    p_run.add_argument("--timeout", type=float, default=300.0,
                       help="per-cell timeout in seconds")
    p_run.add_argument("--label", default="suite",
                       help="run-manifest label")
    p_run.add_argument("--trace", action="store_true",
                       help="record spans + counters into a JSONL "
                            "trace artifact under the store's traces/ "
                            "(read back with 'repro trace summary')")
    p_run.add_argument("--durations", type=int, default=0, metavar="N",
                       help="append a table of the N slowest cells")
    p_run.set_defaults(func=cmd_suite_run)

    p_diff = suite_sub.add_parser(
        "diff", help="compare two run manifests (JSONL)")
    p_diff.add_argument("old", help="baseline run manifest path")
    p_diff.add_argument("new", help="candidate run manifest path")
    p_diff.set_defaults(func=cmd_suite_diff)

    p_query = sub.add_parser(
        "query", help="answer one replacement-path query from a "
                      "precomputed oracle")
    add_instance_args(p_query)
    p_query.add_argument("--source", type=int, default=None,
                         help="query source (default: the instance s)")
    p_query.add_argument("--target", type=int, default=None,
                         help="query target (default: the instance t)")
    p_query.add_argument("--edge", type=int, nargs=2, default=None,
                         metavar=("U", "V"),
                         help="failed edge (default: --fail-index)")
    p_query.add_argument("--fail-index", type=int, default=0,
                         help="fail the i-th edge of P (default 0)")
    p_query.add_argument("--solver", default="theorem1",
                         choices=["theorem1", "centralized"],
                         help="oracle construction solver")
    p_query.add_argument("--check", action="store_true",
                         help="verify against the centralized oracle")
    p_query.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="deadline over oracle build + query; on "
                              "expiry print a structured 'timeout' "
                              "outcome and exit 2 instead of hanging")
    p_query.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    p_query.set_defaults(func=cmd_query)

    p_mutate = sub.add_parser(
        "mutate", help="replay a seeded mutation stream (fault "
                       "storms, regional failures, maintenance "
                       "windows) against one instance")
    add_instance_args(p_mutate)
    p_mutate.add_argument("--profile", default="burst",
                          choices=["burst", "storm", "regional",
                                   "maintenance"],
                          help="mutation stream profile")
    p_mutate.add_argument("--steps", type=int, default=3,
                          help="mutation batches to apply (each bumps "
                               "the topology epoch)")
    p_mutate.add_argument("--mutation-seed", type=int, default=0,
                          help="mutation stream seed (independent of "
                               "the instance seed)")
    p_mutate.add_argument("--burst-size", type=int, default=4,
                          help="mutations per burst batch")
    p_mutate.add_argument("--fraction", type=float, default=0.1,
                          help="edge fraction for storm/regional")
    p_mutate.add_argument("--radius", type=int, default=2,
                          help="BFS-ball radius for regional storms")
    p_mutate.add_argument("--window", type=int, default=4,
                          help="vertex window for maintenance")
    p_mutate.add_argument("--json", action="store_true",
                          help="machine-readable JSON output")
    p_mutate.set_defaults(func=cmd_mutate)

    p_store = sub.add_parser(
        "store", help="content-addressed result store maintenance")
    store_sub = p_store.add_subparsers(dest="store_command",
                                       required=True)
    p_gc = store_sub.add_parser(
        "gc", help="prune unreachable objects: corrupt files, "
                   "superseded code versions, superseded topology "
                   "epochs")
    p_gc.add_argument("--cache-dir", default=None,
                      help="store root (default .repro-cache or "
                           "$REPRO_CACHE_DIR)")
    p_gc.add_argument("--dry-run", action="store_true",
                      help="report what would be pruned without "
                           "deleting anything")
    p_gc.add_argument("--verbose", action="store_true",
                      help="list every pruned object")
    p_gc.add_argument("--json", action="store_true",
                      help="machine-readable JSON output")
    p_gc.set_defaults(func=cmd_store_gc)

    p_serve = sub.add_parser(
        "serve", help="sharded replacement-path query service")
    serve_sub = p_serve.add_subparsers(dest="serve_command",
                                       required=True)
    p_bench = serve_sub.add_parser(
        "bench", help="drive generated workloads through the service")
    p_bench.add_argument("--n", type=int, default=48,
                         help="instance size")
    p_bench.add_argument("--instances", type=int, default=4,
                         help="instances in the service catalog")
    p_bench.add_argument("--queries", type=int, default=400,
                         help="total queries per workload")
    p_bench.add_argument("--workload", action="append", default=[],
                         choices=["uniform", "zipf", "adversarial",
                                  "mixed"],
                         help="workload kind (repeatable; default: "
                              "all four)")
    p_bench.add_argument("--shards", type=int, default=None,
                         help="shard count (default: min(CPUs, "
                              "instances))")
    p_bench.add_argument("--capacity", type=int, default=4,
                         help="per-shard hot-oracle LRU capacity")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="worker processes for serving "
                              "(1 = in-process)")
    p_bench.add_argument("--solver", default="theorem1",
                         choices=["theorem1", "centralized"],
                         help="oracle construction solver")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--cache-dir", default=None,
                         help="spill store root (enables persistent "
                              "oracle spill)")
    p_bench.add_argument("--latency-sample", type=int, default=200,
                         metavar="N",
                         help="warm single-query timings behind the "
                              "p50/p95/p99 columns (default 200)")
    p_bench.add_argument("--json", action="store_true",
                         help="machine-readable JSON output "
                              "(includes the service stats snapshot)")
    p_bench.set_defaults(func=cmd_serve_bench)

    def add_daemon_args(p):
        p.add_argument("--n", type=int, default=32,
                       help="instance size")
        p.add_argument("--instances", type=int, default=4,
                       help="instances in the served catalog")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: "
                            "min(CPUs, instances))")
        p.add_argument("--capacity", type=int, default=4,
                       help="per-worker hot-oracle LRU capacity")
        p.add_argument("--solver", default="theorem1",
                       choices=["theorem1", "centralized"],
                       help="oracle construction solver")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cache-dir", default=None,
                       help="spill store root (persists oracles "
                            "across worker restarts)")
        p.add_argument("--max-queue", type=int, default=256,
                       help="bounded admission queue (beyond it, "
                            "submissions reject 'overloaded')")
        p.add_argument("--max-inflight", type=int, default=64,
                       help="per-shard in-flight query cap")
        p.add_argument("--timeout", type=float, default=30.0,
                       help="per-request deadline in seconds")
        p.add_argument("--stats-json", default=None, metavar="PATH",
                       help="dump the daemon stats snapshot (shards, "
                            "totals, counters) to PATH on shutdown")
        p.add_argument("--prometheus", action="store_true",
                       help="print the Prometheus text exposition "
                            "on shutdown")

    p_daemon = serve_sub.add_parser(
        "daemon", help="long-lived shard workers: start, warm, "
                       "self-check, report, drain")
    add_daemon_args(p_daemon)
    p_daemon.add_argument("--selfcheck", type=int, default=40,
                          metavar="N",
                          help="mixed-workload queries per instance "
                               "for the self-check pass (default 40)")
    p_daemon.set_defaults(func=cmd_serve_daemon)

    p_load = serve_sub.add_parser(
        "load", help="open/closed-loop load generation against the "
                     "daemon with p50/p95/p99 SLO gates")
    add_daemon_args(p_load)
    p_load.add_argument("--queries", type=int, default=400,
                        help="total queries per workload")
    p_load.add_argument("--workload", action="append", default=[],
                        choices=["uniform", "zipf", "adversarial",
                                 "mixed"],
                        help="workload kind (repeatable; default: "
                             "all four)")
    p_load.add_argument("--mode", default="closed",
                        choices=["closed", "open"],
                        help="loop discipline (closed: concurrency "
                             "clients wait per query; open: submit "
                             "on schedule regardless)")
    p_load.add_argument("--qps", type=float, default=None,
                        help="target aggregate QPS (required for "
                             "open loop; optional pacing for closed)")
    p_load.add_argument("--concurrency", type=int, default=4,
                        help="closed-loop client threads")
    p_load.add_argument("--check", action="store_true",
                        help="verify every answer against a direct "
                             "ShardedQueryService on the same "
                             "catalog (bit-identity gate)")
    p_load.add_argument("--check-telemetry", action="store_true",
                        help="fail on serving-counter labels outside "
                             "the closed enums (CI gate)")
    p_load.add_argument("--max-p95-ms", type=float, default=None,
                        help="fail any workload whose ok-request p95 "
                             "exceeds this many milliseconds")
    p_load.add_argument("--max-staleness", type=int, default=None,
                        metavar="EPOCHS",
                        help="per-request staleness budget: during "
                             "an oracle re-warm, answers up to this "
                             "many epochs old return 'stale' instead "
                             "of waiting")
    p_load.add_argument("--chaos", action="store_true",
                        help="run the chaos harness instead of plain "
                             "load: concurrent mutation bursts, "
                             "worker SIGKILLs, and queue stalls, then "
                             "a quiesced bit-identical convergence "
                             "gate")
    p_load.add_argument("--chaos-duration", type=float, default=3.0,
                        metavar="SECONDS",
                        help="chaos storm window (default 3s)")
    p_load.add_argument("--kills", type=int, default=1,
                        help="worker SIGKILLs to inject")
    p_load.add_argument("--stalls", type=int, default=1,
                        help="queue stalls to inject")
    p_load.add_argument("--bursts", type=int, default=3,
                        help="mutation bursts during the storm")
    p_load.add_argument("--burst-size", type=int, default=4,
                        help="mutations per burst")
    p_load.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    p_load.set_defaults(func=cmd_serve_load)

    p_trace = sub.add_parser(
        "trace", help="summarize / diff JSONL trace artifacts")
    trace_sub = p_trace.add_subparsers(dest="trace_command",
                                       required=True)
    p_tsum = trace_sub.add_parser(
        "summary", help="per-phase wall x ledger table, slowest "
                        "spans, fallback histogram")
    p_tsum.add_argument("path",
                        help="trace directory or .jsonl file "
                             "('latest' = newest under the store)")
    p_tsum.add_argument("--top", type=int, default=10,
                        help="slowest spans to list (default 10)")
    p_tsum.add_argument("--check-reasons", action="store_true",
                        help="fail when the trace contains kernel "
                             "dispatch outcomes outside the known "
                             "reason enum (CI gate)")
    p_tsum.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    p_tsum.set_defaults(func=cmd_trace_summary)

    p_tdiff = trace_sub.add_parser(
        "diff", help="phase-level wall + rounds comparison of two "
                     "traces")
    p_tdiff.add_argument("old", help="baseline trace dir/file")
    p_tdiff.add_argument("new", help="candidate trace dir/file")
    p_tdiff.add_argument("--threshold", type=float, default=0.25,
                         help="wall-regression threshold as a "
                              "fraction (default 0.25 = +25%%)")
    p_tdiff.add_argument("--json", action="store_true",
                         help="machine-readable JSON output")
    p_tdiff.set_defaults(func=cmd_trace_diff)

    p_kernels = sub.add_parser(
        "kernels", help="the primitive registry / dispatch table")
    kernels_sub = p_kernels.add_subparsers(dest="kernels_command",
                                           required=True)
    p_klist = kernels_sub.add_parser(
        "list", help="print the primitive x fabric dispatch table")
    p_klist.add_argument("--json", action="store_true",
                         help="machine-readable full registry dump")
    p_klist.set_defaults(func=cmd_kernels_list)

    p_info = sub.add_parser("info", help="version and experiment map")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
