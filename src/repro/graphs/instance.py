"""Problem instances for the replacement-paths problems.

An :class:`RPathsInstance` bundles a directed graph with the source ``s``,
target ``t``, and the given s-t shortest path ``P`` — the exact input the
paper's Definitions 2.1–2.3 assume.  Validation enforces the paper's
preconditions: ``P`` is a genuine shortest path, weights are positive
integers (poly(n)-bounded in spirit), and the communication graph is
connected (otherwise D is undefined).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..congest.errors import InvalidInstanceError
from ..congest.network import CongestNetwork
from ..congest.words import INF

Edge = Tuple[int, int]


@dataclass
class RPathsInstance:
    """A replacement-paths problem instance.

    Attributes
    ----------
    n:
        Number of vertices (``0..n-1``).
    edges:
        Directed weighted edges ``(u, v, w)``; ``w == 1`` everywhere for
        unweighted instances.
    path:
        The given s-t shortest path as a vertex sequence
        ``(s = v_0, ..., v_{h_st} = t)``.
    weighted:
        Whether the instance should be treated as weighted (Theorem 3)
        or unweighted (Theorem 1).
    name:
        Optional label used in experiment reports.
    topology_version:
        Monotone epoch counter for dynamic graphs.  Every applied
        mutation batch (:func:`repro.dynamic.stream.apply_mutations`)
        yields a *new* instance with the same name and
        ``topology_version + 1``; the serve tier keys spilled oracle
        snapshots by (name, version), so state built against a
        superseded topology can never be mistaken for fresh.
    """

    n: int
    edges: List[Tuple[int, int, int]]
    path: List[int]
    weighted: bool = False
    name: str = ""
    topology_version: int = 0
    _adj: Optional[List[List[Tuple[int, int]]]] = field(
        default=None, repr=False, compare=False)
    _radj: Optional[List[List[Tuple[int, int]]]] = field(
        default=None, repr=False, compare=False)
    _topology: Optional[object] = field(
        default=None, repr=False, compare=False)
    _path_prefix: Optional[List[int]] = field(
        default=None, repr=False, compare=False)

    # -- basic accessors -----------------------------------------------------

    @property
    def s(self) -> int:
        return self.path[0]

    @property
    def t(self) -> int:
        return self.path[-1]

    @property
    def hop_count(self) -> int:
        """h_st — the number of edges of P."""
        return len(self.path) - 1

    @property
    def m(self) -> int:
        return len(self.edges)

    def path_edges(self) -> List[Edge]:
        """The edges (v_i, v_{i+1}) of P, in order."""
        return [(self.path[i], self.path[i + 1])
                for i in range(self.hop_count)]

    def path_edge_set(self) -> FrozenSet[Edge]:
        return frozenset(self.path_edges())

    def adjacency(self) -> List[List[Tuple[int, int]]]:
        """Out-adjacency ``adj[u] = [(v, w), ...]`` (cached)."""
        if self._adj is None:
            adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
            for u, v, w in self.edges:
                adj[u].append((v, w))
            self._adj = adj
        return self._adj

    def reverse_adjacency(self) -> List[List[Tuple[int, int]]]:
        """In-adjacency ``radj[v] = [(u, w), ...]`` (cached)."""
        if self._radj is None:
            radj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n)]
            for u, v, w in self.edges:
                radj[v].append((u, w))
            self._radj = radj
        return self._radj

    def edge_weight_map(self) -> Dict[Edge, int]:
        return {(u, v): w for u, v, w in self.edges}

    def path_prefix_weights(self) -> List[int]:
        """``pre[i]`` = weighted length of P[s, v_i]; pre[0] == 0.

        Cached, and resolved through the cached out-adjacency rather
        than a throwaway O(m) edge-weight dict — at scale-out sizes
        the map dwarfed the path it priced.
        """
        if self._path_prefix is None:
            adj = self.adjacency()
            pre = [0]
            for u, v in self.path_edges():
                w = next(wt for head, wt in adj[u] if head == v)
                pre.append(pre[-1] + w)
            self._path_prefix = pre
        return list(self._path_prefix)

    @property
    def path_length(self) -> int:
        """|P| — weighted length of the given path."""
        return self.path_prefix_weights()[-1]

    def max_weight(self) -> int:
        return max((w for _, _, w in self.edges), default=1)

    @property
    def versioned_key(self) -> str:
        """``name@topology_version`` — the serving-tier cache identity."""
        return f"{self.name}@{self.topology_version}"

    # -- centralized shortest paths (oracle machinery) -----------------------

    def dijkstra(self, source: int, reverse: bool = False,
                 avoid_edges: FrozenSet[Edge] = frozenset()) -> List[int]:
        """Centralized SSSP used for validation and ground truth.

        With ``reverse=True`` computes distances *to* ``source``.
        Unweighted instances use plain BFS for speed.
        """
        adj = self.reverse_adjacency() if reverse else self.adjacency()

        def excluded(u: int, v: int) -> bool:
            return ((v, u) in avoid_edges) if reverse else (
                (u, v) in avoid_edges)

        dist = [INF] * self.n
        dist[source] = 0
        if not self.weighted:
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for v, _ in adj[u]:
                    if excluded(u, v):
                        continue
                    if dist[v] >= INF:
                        dist[v] = dist[u] + 1
                        queue.append(v)
            return dist
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adj[u]:
                if excluded(u, v):
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def shortest_path_to(self, target: int,
                         source: Optional[int] = None) -> List[int]:
        """One shortest source→target path (parent-tracking SSSP).

        Deterministic: among equal-length paths the lowest-numbered
        predecessor wins, so re-deriving P after a mutation batch is a
        pure function of the edge list.  Raises
        :class:`InvalidInstanceError` when the target is unreachable.
        """
        source = self.s if source is None else source
        adj = self.adjacency()
        dist = [INF] * self.n
        parent = [-1] * self.n
        dist[source] = 0
        if not self.weighted:
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for v, _ in sorted(adj[u]):
                    if dist[v] >= INF:
                        dist[v] = dist[u] + 1
                        parent[v] = u
                        queue.append(v)
        else:
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                for v, w in sorted(adj[u]):
                    nd = d + w
                    if nd < dist[v] or (nd == dist[v]
                                        and parent[v] > u >= 0):
                        dist[v] = nd
                        parent[v] = u
                        heapq.heappush(heap, (nd, v))
        if dist[target] >= INF:
            raise InvalidInstanceError(
                f"vertex {target} unreachable from {source}")
        path = [target]
        while path[-1] != source:
            path.append(parent[path[-1]])
        return list(reversed(path))

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InvalidInstanceError` on any broken precondition."""
        if self.n <= 1:
            raise InvalidInstanceError("instance needs at least two vertices")
        if len(self.path) < 2:
            raise InvalidInstanceError("path must contain at least one edge")
        if len(set(self.path)) != len(self.path):
            raise InvalidInstanceError("path visits a vertex twice")
        weights = self.edge_weight_map()
        if len(weights) != len(self.edges):
            raise InvalidInstanceError("duplicate directed edge in edge list")
        for u, v, w in self.edges:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise InvalidInstanceError(f"edge ({u},{v}) out of range")
            if u == v:
                raise InvalidInstanceError(f"self-loop at {u}")
            if w <= 0 or (not self.weighted and w != 1):
                raise InvalidInstanceError(
                    f"edge ({u},{v}) weight {w} invalid for this instance")
        for u, v in self.path_edges():
            if (u, v) not in weights:
                raise InvalidInstanceError(
                    f"path edge ({u},{v}) is not a graph edge")
        dist = self.dijkstra(self.s)
        if dist[self.t] >= INF:
            raise InvalidInstanceError("t unreachable from s")
        pre = self.path_prefix_weights()
        if pre[-1] != dist[self.t]:
            raise InvalidInstanceError(
                f"P has length {pre[-1]} but dist(s,t) = {dist[self.t]}; "
                "P is not a shortest path")
        for i, v in enumerate(self.path):
            if pre[i] != dist[v]:
                raise InvalidInstanceError(
                    f"P's prefix to {v} is not a shortest path")
        net = self.build_network()
        if not net.is_connected():
            raise InvalidInstanceError("communication graph is disconnected")

    # -- simulator glue ------------------------------------------------------

    def build_network(self, bandwidth_words: Optional[int] = None,
                      strict: bool = False,
                      fabric: str = "fast") -> CongestNetwork:
        """Instantiate a fresh CONGEST network for this instance.

        The frozen :class:`~repro.congest.topology.CSRTopology` is built
        once per instance and shared by every network (fresh ledgers,
        shared adjacency), so repeated solver runs stop paying graph
        re-parsing.  ``fabric`` selects the exchange engine (see
        :data:`~repro.congest.network.FABRICS`); the lazily-built NumPy
        array views that ``fabric="vector"`` kernels gather over live on
        the shared topology, so they too are built once per instance.
        """
        if self._topology is None:
            from ..congest.topology import CSRTopology
            self._topology = CSRTopology(self.n, self.edges)
        kwargs = {}
        if bandwidth_words is not None:
            kwargs["bandwidth_words"] = bandwidth_words
        return CongestNetwork(self.n, self.edges, strict=strict,
                              fabric=fabric, topology=self._topology,
                              **kwargs)


def instance_from_edges(
    edges: Sequence[Tuple[int, int]],
    path: Sequence[int],
    n: Optional[int] = None,
    weights: Optional[Dict[Edge, int]] = None,
    weighted: bool = False,
    name: str = "",
    validate: bool = True,
) -> RPathsInstance:
    """Convenience constructor from unweighted edge pairs."""
    if n is None:
        n = 1 + max(max(u, v) for u, v in edges)
    weighted_edges = [
        (u, v, (weights or {}).get((u, v), 1)) for u, v in edges
    ]
    instance = RPathsInstance(
        n=n, edges=weighted_edges, path=list(path),
        weighted=weighted, name=name)
    if validate:
        instance.validate()
    return instance
