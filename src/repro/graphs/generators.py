"""Instance generators for the experiments.

The paper's bounds involve three instance parameters — n, the diameter D,
and the hop length h_st of the given path — and the interesting regimes
pull them apart.  Each generator here targets one regime:

* :func:`random_instance` — sparse random digraphs: small D, small h_st
  (the regime where the trivial h_st × SSSP baseline shines, see the
  Section 1.1 remark);
* :func:`path_with_chords_instance` — h_st = Θ(n): the regime where the
  MR24b upper bound's √(n·h_st) term and the trivial baseline blow up,
  but Theorem 1 stays at Õ(n^{2/3} + D);
* :func:`layered_instance` — leveled DAGs where *every* s-t path has the
  same hop count, so replacement paths are plentiful and exercised;
* :func:`grid_instance` — directed grids with systematic two-hop detours;
* :func:`double_path_instance` — the minimal two-parallel-paths family
  (also the Ω(D) lower-bound shape from the proof of Theorem 2);
* :func:`expander_instance` — near-regular random digraphs with
  logarithmic diameter and dense detour structure;
* :func:`power_law_instance` — preferential-attachment digraphs whose
  hubs concentrate congestion.

All generators take an explicit ``seed`` and return validated
:class:`~repro.graphs.instance.RPathsInstance` objects.  Stochastic
generators additionally accept a shared ``rng`` (``random.Random``), so
a scenario spec can thread one reproducible stream through several
builds; no generator ever touches the global ``random`` state.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..congest.errors import InvalidInstanceError
from ..congest.words import INF
from .instance import RPathsInstance

Edge = Tuple[int, int]


def _resolve_rng(seed: int, rng: Optional[random.Random]) -> random.Random:
    """The single randomness funnel: an explicit stream wins, else a
    fresh ``random.Random(seed)`` — never the global module state."""
    return rng if rng is not None else random.Random(seed)


def _shortest_path_via_parents(instance: RPathsInstance, s: int,
                               t: int) -> List[int]:
    """Centralized shortest s-t path extraction (generator machinery)."""
    import heapq
    adj = instance.adjacency()
    dist = [INF] * instance.n
    parent = [-1] * instance.n
    dist[s] = 0
    heap = [(0, s)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and u < parent[v]):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    if dist[t] >= INF:
        raise InvalidInstanceError("no s-t path to extract")
    path = [t]
    while path[-1] != s:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _connect_support(n: int, edges: Set[Edge], rng: random.Random) -> None:
    """Add directed edges until the undirected support is connected.

    New edges attach each later component representative to a random
    earlier vertex; orientations are random, which never changes
    undirected connectivity.
    """
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)
    for v in range(1, n):
        if find(v) != find(0):
            u = rng.randrange(v)
            edge = (u, v) if rng.random() < 0.5 else (v, u)
            if edge in edges or (edge[1], edge[0]) in edges:
                edge = (u, v) if edge == (v, u) else (v, u)
            edges.add(edge)
            union(u, v)


def _finalize_random_instance(
    n: int,
    edges: Set[Edge],
    rng: random.Random,
    weighted: bool,
    max_weight: int,
    name: str,
) -> RPathsInstance:
    """Weight the edge set, pick a far (s, t) pair, extract P, validate.

    Shared tail of every random-ish family: s is scanned over a prefix
    of vertices for good forward reach (a fixed source can be a sink in
    a sparse random digraph), then t is the farthest reachable vertex.
    """
    weights: Dict[Edge, int] = {}
    if weighted:
        weights = {e: rng.randint(1, max_weight) for e in sorted(edges)}
    instance = RPathsInstance(
        n=n,
        edges=[(u, v, weights.get((u, v), 1)) for u, v in sorted(edges)],
        path=[0, 1],  # placeholder until extraction below
        weighted=weighted,
        name=name,
    )
    best_pair = None
    for s in range(min(n, 25)):
        dist = instance.dijkstra(s)
        candidates = [v for v in range(n) if 0 < dist[v] < INF]
        if not candidates:
            continue
        t = max(candidates, key=lambda v: (dist[v], v))
        if best_pair is None or dist[t] > best_pair[2]:
            best_pair = (s, t, dist[t])
    if best_pair is None:
        raise InvalidInstanceError("no source has reachable vertices")
    s, t, _ = best_pair
    instance.path = _shortest_path_via_parents(instance, s, t)
    instance.validate()
    return instance


def random_instance(
    n: int,
    avg_degree: float = 4.0,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 16,
    name: str = "",
    rng: Optional[random.Random] = None,
) -> RPathsInstance:
    """Sparse Erdős–Rényi-style digraph with an extracted shortest path.

    s is vertex 0; t is a finite-distance vertex of maximal distance, so
    h_st is the (small, O(log n)-ish) directed eccentricity.
    """
    rng = _resolve_rng(seed, rng)
    target_m = max(n, int(avg_degree * n / 2))
    edges: Set[Edge] = set()
    while len(edges) < target_m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add((u, v))
    _connect_support(n, edges, rng)
    return _finalize_random_instance(
        n, edges, rng, weighted, max_weight,
        name or f"random(n={n},seed={seed})")


def expander_instance(
    n: int,
    degree: int = 4,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 16,
    name: str = "",
    rng: Optional[random.Random] = None,
) -> RPathsInstance:
    """Near-regular expander-style digraph: ``degree`` random
    out-neighbours per vertex via random cyclic shifts.

    Each of the ``degree`` rounds adds one random permutation's cycle
    edges (u -> π(u)), so in- and out-degrees stay balanced and the
    diameter is logarithmic with high probability — the small-D,
    detour-rich regime where Theorem 1's additive D term vanishes.
    """
    if n < 3:
        raise ValueError("expander needs at least three vertices")
    if degree < 2:
        raise ValueError("expander needs degree >= 2")
    rng = _resolve_rng(seed, rng)
    edges: Set[Edge] = set()
    for _ in range(degree):
        perm = list(range(n))
        rng.shuffle(perm)
        for u in range(n):
            v = perm[u]
            if u != v:
                edges.add((u, v))
    _connect_support(n, edges, rng)
    return _finalize_random_instance(
        n, edges, rng, weighted, max_weight,
        name or f"expander(n={n},d={degree},seed={seed})")


def power_law_instance(
    n: int,
    attach: int = 2,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 16,
    name: str = "",
    rng: Optional[random.Random] = None,
) -> RPathsInstance:
    """Preferential-attachment digraph (Barabási–Albert flavoured).

    Vertex v attaches to ``attach`` earlier vertices sampled
    proportionally to their current degree, with random edge
    orientation.  The resulting hubs concentrate link load, which
    stresses the congestion accounting rather than the round count.
    """
    if n < 3 or attach < 1:
        raise ValueError("need n >= 3 and attach >= 1")
    rng = _resolve_rng(seed, rng)
    edges: Set[Edge] = set()
    # Degree-weighted sampling via a repeated-endpoint urn.
    urn: List[int] = [0, 1]
    edges.add((0, 1))
    for v in range(2, n):
        targets: Set[int] = set()
        want = min(attach, v)
        while len(targets) < want:
            targets.add(urn[rng.randrange(len(urn))])
        for u in targets:
            edge = (u, v) if rng.random() < 0.5 else (v, u)
            if edge not in edges:
                edges.add(edge)
            urn.append(u)
            urn.append(v)
    _connect_support(n, edges, rng)
    return _finalize_random_instance(
        n, edges, rng, weighted, max_weight,
        name or f"powerlaw(n={n},a={attach},seed={seed})")


def path_with_chords_instance(
    hops: int,
    detour_every: int = 4,
    detour_extra: int = 2,
    detour_span: int = 3,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 8,
    overlay_hub: bool = False,
    name: str = "",
    rng: Optional[random.Random] = None,
) -> RPathsInstance:
    """A long planted path P (h_st = ``hops``) with detour gadgets.

    Every ``detour_every`` positions, a detour of ``span + extra`` hops
    bypasses ``span`` consecutive path edges through fresh vertices, so
    replacement paths exist for most edges and P remains strictly
    shortest (detours are longer than what they skip).  This is the
    h_st = Θ(n) regime that separates Theorem 1 from the baselines.

    ``overlay_hub=True`` adds one extra vertex with a directed edge *to*
    every other vertex: the communication diameter collapses to 2 while
    the directed reachability from s is untouched (the hub has no
    incoming edges), exactly the trick the paper's lower-bound graphs
    use (step 7 of Section 6.3) to decouple D from h_st.
    """
    if hops < 2:
        raise ValueError("need at least two path hops")
    rng = _resolve_rng(seed, rng)
    path = list(range(hops + 1))
    edges: Set[Edge] = set(zip(path, path[1:]))
    n = hops + 1
    detours: List[Tuple[int, int, List[int]]] = []
    for start in range(0, hops - 1, detour_every):
        span = min(detour_span, hops - start)
        if span < 1:
            continue
        extra = detour_extra + rng.randrange(2)
        inner = span + extra - 1  # detour hop count = inner + 1
        fresh = list(range(n, n + inner))
        n += inner
        chain = [path[start]] + fresh + [path[start + span]]
        for a, b in zip(chain, chain[1:]):
            edges.add((a, b))
        detours.append((start, start + span, fresh))
    weights: Dict[Edge, int] = {}
    if weighted:
        # Path edges get weight w; detour chains must stay strictly longer
        # than what they bypass, so give detour edges weights that sum
        # above the bypassed subpath.
        for u, v in sorted(edges):
            weights[(u, v)] = rng.randint(1, max_weight)
        pre = [0]
        for u, v in zip(path, path[1:]):
            pre.append(pre[-1] + weights[(u, v)])
        for start, end, fresh in detours:
            chain = [path[start]] + fresh + [path[end]]
            skipped = pre[end] - pre[start]
            hops_in_chain = len(chain) - 1
            base = skipped // hops_in_chain + 1
            for a, b in zip(chain, chain[1:]):
                weights[(a, b)] = base + rng.randrange(2)
    if overlay_hub:
        hub = n
        n += 1
        for v in range(hub):
            edges.add((hub, v))
            if weighted:
                weights[(hub, v)] = 1
    instance = RPathsInstance(
        n=n,
        edges=[(u, v, weights.get((u, v), 1)) for u, v in sorted(edges)],
        path=path,
        weighted=weighted,
        name=name or f"chords(h={hops},seed={seed})",
    )
    instance.validate()
    return instance


def layered_instance(
    layers: int,
    width: int,
    forward_prob: float = 0.5,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 8,
    name: str = "",
    rng: Optional[random.Random] = None,
) -> RPathsInstance:
    """A leveled DAG: ``layers`` levels of ``width`` vertices.

    Vertex (ℓ, i) has index ℓ*width + i, with s and t in dedicated first
    and last single-vertex levels.  Every edge goes one level forward, so
    in the unweighted case *every* s-t path is shortest and replacement
    paths abound.  The planted chain (level ℓ, slot 0) is P.
    """
    if layers < 2 or width < 1:
        raise ValueError("need at least two layers and width >= 1")
    rng = _resolve_rng(seed, rng)

    def vid(level: int, slot: int) -> int:
        return 1 + (level * width + slot)

    s = 0
    t = 1 + layers * width
    n = t + 1
    edges: Set[Edge] = set()
    for slot in range(width):
        edges.add((s, vid(0, slot)))
        edges.add((vid(layers - 1, slot), t))
    for level in range(layers - 1):
        for i in range(width):
            # Per-slot chain edges guarantee every vertex is wired into
            # the communication graph (slot 0's chain is the planted P).
            edges.add((vid(level, i), vid(level + 1, i)))
            for j in range(width):
                if rng.random() < forward_prob:
                    edges.add((vid(level, i), vid(level + 1, j)))
    path = [s] + [vid(level, 0) for level in range(layers)] + [t]
    weights: Dict[Edge, int] = {}
    if weighted:
        for e in sorted(edges):
            weights[e] = rng.randint(2, max_weight)
        # Make the planted chain strictly cheapest level-by-level.
        for u, v in zip(path, path[1:]):
            weights[(u, v)] = 1
    instance = RPathsInstance(
        n=n,
        edges=[(u, v, weights.get((u, v), 1)) for u, v in sorted(edges)],
        path=path,
        weighted=weighted,
        name=name or f"layered(L={layers},w={width},seed={seed})",
    )
    instance.validate()
    return instance


def grid_instance(rows: int, cols: int, name: str = "") -> RPathsInstance:
    """Directed grid: rightward edges in every row, both vertical
    directions in every column.

    P is the top row; the replacement path for any top-row edge drops one
    row, moves right, and climbs back (+2 hops), giving a fully
    deterministic ground truth that tests lean on.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid needs at least 2x2 vertices")

    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges: Set[Edge] = set()
    for r in range(rows):
        for c in range(cols - 1):
            edges.add((vid(r, c), vid(r, c + 1)))
    for c in range(cols):
        for r in range(rows - 1):
            edges.add((vid(r, c), vid(r + 1, c)))
            edges.add((vid(r + 1, c), vid(r, c)))
    path = [vid(0, c) for c in range(cols)]
    instance = RPathsInstance(
        n=rows * cols,
        edges=[(u, v, 1) for u, v in sorted(edges)],
        path=path,
        weighted=False,
        name=name or f"grid({rows}x{cols})",
    )
    instance.validate()
    return instance


def double_path_instance(
    hops: int,
    extra: int = 1,
    name: str = "",
) -> RPathsInstance:
    """Two parallel s-t paths: P with ``hops`` edges and a disjoint
    alternative with ``hops + extra`` edges.

    Every edge of P has the same replacement length ``hops + extra``.
    This is the shape of the Ω(D) lower-bound construction in the proof
    of Theorem 2.
    """
    if hops < 1 or extra < 1:
        raise ValueError("hops and extra must be positive")
    path = list(range(hops + 1))
    s, t = path[0], path[-1]
    n = hops + 1
    alt = [s] + list(range(n, n + hops + extra - 1)) + [t]
    n += hops + extra - 1
    edges: Set[Edge] = set(zip(path, path[1:])) | set(zip(alt, alt[1:]))
    instance = RPathsInstance(
        n=n,
        edges=[(u, v, 1) for u, v in sorted(edges)],
        path=path,
        weighted=False,
        name=name or f"double-path(h={hops},extra={extra})",
    )
    instance.validate()
    return instance
