"""Problem instances and generators for replacement-paths experiments."""

from .instance import RPathsInstance, instance_from_edges
from .generators import (
    double_path_instance,
    expander_instance,
    grid_instance,
    layered_instance,
    path_with_chords_instance,
    power_law_instance,
    random_instance,
)

__all__ = [
    "RPathsInstance",
    "double_path_instance",
    "expander_instance",
    "grid_instance",
    "instance_from_edges",
    "layered_instance",
    "path_with_chords_instance",
    "power_law_instance",
    "random_instance",
]
