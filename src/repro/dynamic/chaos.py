"""Chaos harness: storms, kills, and stalls against a live daemon.

:func:`run_chaos` stands up a :class:`~repro.serve.daemon.ServeDaemon`
+ :class:`~repro.serve.frontend.ServeFrontend` and then runs four
antagonists concurrently for the configured window:

* a **load thread** issuing retry-wrapped queries with a staleness
  budget (so storms degrade to ``stale`` answers instead of errors),
* a **mutator thread** applying seeded mutation bursts through
  :meth:`ServeDaemon.apply_mutations` (epoch bumps + incremental
  invalidation),
* a **killer thread** SIGKILLing random live workers (the monitor's
  restart path re-warms them against the *current* epoch), and
* a **staller thread** wedging worker serving loops via
  :meth:`ServeDaemon.inject_stall`.

After the window it **quiesces** — stops injecting, then demands a
fresh (``max_staleness=0``) answer for every path edge of every
instance — and verifies **bit-identical convergence**: each fresh
answer must equal a from-scratch solve of the final-epoch instance.
That is the robustness contract in one sentence: no sequence of
mutations, kills, and stalls may leave a quiesced daemon serving
anything but exactly what a cold solver would compute.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..graphs.instance import RPathsInstance
from ..serve.client import RetryPolicy, query_with_retry
from ..serve.daemon import ServeDaemon
from ..serve.frontend import ServeFrontend
from ..serve.loadgen import latency_summary_ms
from ..serve.oracle import centralized_truth
from ..serve.queries import Query
from .stream import MutationStream


@dataclass
class ChaosReport:
    """One chaos run, JSON-safe via :meth:`as_json`."""

    duration: float = 0.0
    queries_sent: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    mutations_applied: int = 0
    mutation_batches: int = 0
    kills: int = 0
    stalls: int = 0
    restarts: int = 0
    epochs: Dict[str, int] = field(default_factory=dict)
    verified: int = 0
    mismatches: List[str] = field(default_factory=list)
    failed_workers: int = 0

    @property
    def converged(self) -> bool:
        """Quiesced fresh answers were bit-identical to from-scratch
        solves and no worker burned through its restart budget."""
        return (not self.mismatches and self.failed_workers == 0
                and self.verified > 0)

    def as_json(self) -> Dict[str, object]:
        return {
            "duration": round(self.duration, 3),
            "queries_sent": self.queries_sent,
            "outcomes": dict(sorted(self.outcomes.items())),
            "latency_ms": {k: round(v, 4)
                           for k, v in self.latency_ms.items()},
            "mutations_applied": self.mutations_applied,
            "mutation_batches": self.mutation_batches,
            "kills": self.kills,
            "stalls": self.stalls,
            "restarts": self.restarts,
            "epochs": dict(sorted(self.epochs.items())),
            "verified": self.verified,
            "mismatches": list(self.mismatches),
            "failed_workers": self.failed_workers,
            "converged": self.converged,
        }


def _random_query(rng: random.Random,
                  instance: RPathsInstance) -> Query:
    """Mostly (S, T) path-edge queries (oracle hits), some arbitrary
    pairs (fallback path) — both must survive the storm."""
    edges = instance.path_edges()
    if rng.random() < 0.7 or instance.n < 4:
        edge = rng.choice(edges)
        return Query(s=instance.s, t=instance.t, edge=edge,
                     instance=instance.name)
    s = rng.randrange(instance.n)
    t = rng.randrange(instance.n)
    return Query(s=s, t=t, edge=rng.choice(edges),
                 instance=instance.name)


def run_chaos(instances: Sequence[RPathsInstance],
              duration: float = 3.0, seed: int = 0,
              workers: int = 2, solver: str = "centralized",
              store=None,
              kills: int = 1, stalls: int = 1,
              stall_seconds: float = 0.2,
              mutation_bursts: int = 3, burst_size: int = 4,
              max_staleness: int = 8,
              query_timeout: float = 30.0,
              rebuild_delay: float = 0.0,
              quiesce_timeout: float = 60.0,
              heartbeat_timeout: float = 2.0,
              monitor_interval: float = 0.1,
              poll_seconds: float = 0.01) -> ChaosReport:
    """Concurrent storm + kill + stall chaos, then verified quiesce.

    Deterministic in its *injections* (seeded mutation stream, seeded
    query mix); timing interleavings naturally vary, which is the
    point — convergence must hold for all of them.
    """
    instances = [inst for inst in instances]
    if not instances:
        raise ValueError("chaos needs at least one instance")
    rng = random.Random(seed)
    stream = MutationStream(seed=seed)
    report = ChaosReport()
    daemon = ServeDaemon(
        instances, workers=workers, solver=solver, store=store,
        rebuild_delay=rebuild_delay,
        heartbeat_timeout=heartbeat_timeout,
        monitor_interval=monitor_interval,
        poll_seconds=poll_seconds,
        # The killer must never exhaust the budget: a permanently
        # failed worker is a convergence failure, not a chaos input.
        max_restarts=kills + 2)
    names = [inst.name for inst in instances]
    results: List[object] = []
    stop = threading.Event()
    policy = RetryPolicy(max_attempts=4, backoff_seconds=0.05)

    def load_loop() -> None:
        qrng = random.Random(seed + 1)
        while not stop.is_set():
            name = qrng.choice(names)
            query = _random_query(qrng, daemon.instance_for(name))
            results.append(query_with_retry(
                frontend, query, timeout=query_timeout,
                max_staleness=max_staleness, policy=policy))

    def mutate_loop() -> None:
        interval = duration / (mutation_bursts + 1)
        for _ in range(mutation_bursts):
            if stop.wait(timeout=interval):
                return
            name = rng.choice(names)
            current = daemon.instance_for(name)
            batch = stream.burst(current, burst_size)
            result = daemon.apply_mutations(name, batch)
            stream.note_applied(name, result.applied)
            report.mutations_applied += len(result.applied)
            report.mutation_batches += 1

    def kill_loop() -> None:
        interval = duration / (kills + 1)
        for _ in range(kills):
            if stop.wait(timeout=interval):
                return
            rows = [r for r in daemon.worker_stats(timeout=1.0)
                    if r["alive"] and not r["failed"] and r["pid"]]
            if not rows:
                continue
            victim = rng.choice(rows)
            try:
                os.kill(int(victim["pid"]), signal.SIGKILL)
                report.kills += 1
            except (OSError, ProcessLookupError):
                pass

    def stall_loop() -> None:
        interval = duration / (stalls + 1)
        for _ in range(stalls):
            if stop.wait(timeout=interval):
                return
            sid = rng.randrange(daemon.workers)
            try:
                daemon.inject_stall(sid, stall_seconds)
                report.stalls += 1
            except RuntimeError:
                return

    start = time.time()
    with daemon:
        frontend = ServeFrontend(daemon,
                                 default_timeout=query_timeout)
        threads = [threading.Thread(target=fn, daemon=True,
                                    name=f"chaos-{fn.__name__}")
                   for fn in (load_loop, mutate_loop, kill_loop,
                              stall_loop)]
        for t in threads:
            t.start()
        time.sleep(duration)
        stop.set()
        for t in threads:
            t.join(timeout=query_timeout + 5.0)

        # -- quiesce + bit-identical convergence check -------------------
        deadline = time.time() + quiesce_timeout
        for name in names:
            final = daemon.instance_for(name)
            truth_edges = final.path_edges()
            for edge in truth_edges:
                remaining = max(1.0, deadline - time.time())
                res = frontend.query(
                    name, final.s, final.t, edge,
                    timeout=remaining, max_staleness=0)
                expected = centralized_truth(final, final.s,
                                             final.t, edge)
                report.verified += 1
                if not res.ok or res.answer.length != expected:
                    report.mismatches.append(
                        f"{name}@{final.topology_version} "
                        f"edge={edge}: got "
                        f"{res.answer.length if res.answer else None}"
                        f"/{res.outcome}, want {expected}")
            report.epochs[name] = final.topology_version
        stats = daemon.stats()
        report.restarts = int(stats["restarts"])
        report.failed_workers = sum(
            1 for row in stats["shards"] if row["failed"])
        frontend.close()

    report.duration = time.time() - start
    report.queries_sent = len(results)
    outcomes: Dict[str, int] = {}
    served: List[float] = []
    for res in results:
        outcomes[res.outcome] = outcomes.get(res.outcome, 0) + 1
        if res.served:
            served.append(res.latency_seconds)
    report.outcomes = outcomes
    report.latency_ms = latency_summary_ms(served)
    return report
