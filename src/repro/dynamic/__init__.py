"""``repro.dynamic`` — dynamic graphs under fault storms.

The serve tier answers replacement-path queries against *live*
instances; this package makes those instances move:

* :mod:`~repro.dynamic.stream` — seedable mutation streams
  (edge-weight changes, failure arrivals / healings, correlated
  regional fault storms, rolling maintenance windows) applied through
  :func:`~repro.dynamic.stream.apply_mutations`, which bumps the
  instance's ``topology_version`` epoch and re-derives P.
* :mod:`~repro.dynamic.chaos` — the chaos harness: concurrent worker
  SIGKILLs, queue stalls, and mutation bursts against a live
  :class:`~repro.serve.daemon.ServeDaemon`, followed by a quiesce and
  a bit-identical convergence check against from-scratch solves.
* :mod:`~repro.dynamic.scenarios` — the ``dynamic-*`` scenario
  families (fault-storm / regional-failure / maintenance-window) in
  the suite catalog.

Telemetry lives in :mod:`repro.telemetry.dynamic` (closed enums for
mutation kinds, skip reasons, and invalidation scopes, plus the
epoch-lag gauge).
"""

from .stream import (  # noqa: F401
    AppliedMutation,
    Mutation,
    MutationResult,
    MutationStream,
    PROFILES,
    apply_mutations,
    ground_truth_length,
)
# The chaos harness imports the serve tier, and the serve daemon
# imports ``dynamic.stream`` — loading ``chaos`` eagerly here would
# close that cycle mid-initialization.  PEP 562 lazy attributes keep
# ``from repro.dynamic import run_chaos`` working without the cycle.
_CHAOS_EXPORTS = ("ChaosReport", "run_chaos")


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from . import chaos
        return getattr(chaos, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AppliedMutation",
    "ChaosReport",
    "Mutation",
    "MutationResult",
    "MutationStream",
    "PROFILES",
    "apply_mutations",
    "ground_truth_length",
    "run_chaos",
]
