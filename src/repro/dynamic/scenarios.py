"""``dynamic-*`` scenario families: serving while the graph moves.

Each cell stands up the in-process sharded serving tier, serves a warm
wave, then interleaves mutation batches (one per epoch step, drawn from
a seeded :class:`~repro.dynamic.stream.MutationStream` profile) with
post-mutation query waves.  Every answer — before, during, and after
the storm — is verified against a from-scratch centralized solve of the
*current-epoch* instance, so the scenario doubles as a correctness gate
for incremental invalidation and memo carry.

Three families, one per fault model in the issue:

* ``dynamic-fault-storm`` — uncorrelated bursts (fail / heal / weight
  mix) across the whole edge set.
* ``dynamic-regional-failure`` — correlated BFS-ball storms: a region
  goes down at once, the way a rack or a cable cut takes out
  neighbours together.
* ``dynamic-maintenance-window`` — rolling planned windows: the edges
  incident to a sliding vertex window fail, then heal as the window
  moves on.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..graphs.generators import random_instance
from ..graphs.instance import RPathsInstance
from ..runtime.registry import scenario
from ..serve.queries import Query
from ..serve.workload import verify_against_centralized
from .stream import MutationStream

Params = Dict[str, object]


def _dynamic_instances(n: int, seed: int) -> List[RPathsInstance]:
    """Two independent instances so invalidation scope is observable:
    mutating one must leave the other's oracle hot.  Unweighted, so the
    exact Theorem 1 pipeline serves them; weight mutations are covered
    by the chaos harness and the CLI (centralized solver)."""
    return [
        random_instance(n, seed=seed, name=f"dyn-{seed}-0"),
        random_instance(max(8, n // 2), seed=seed + 1,
                        name=f"dyn-{seed}-1"),
    ]


def _wave(rng: random.Random, instances: List[RPathsInstance],
          count: int) -> List[Query]:
    """Path-edge queries against the *current* epoch of each instance."""
    queries: List[Query] = []
    for _ in range(count):
        inst = rng.choice(instances)
        edge = rng.choice(inst.path_edges())
        queries.append(Query(s=inst.s, t=inst.t, edge=edge,
                             instance=inst.name))
    return queries


def _mutation_batch(stream: MutationStream, profile: str,
                    instance: RPathsInstance, step: int,
                    params: Params):
    if profile == "storm":
        return stream.storm(instance,
                            fraction=float(params.get("fraction", 0.1)))
    if profile == "regional":
        return stream.regional_storm(
            instance, radius=int(params.get("radius", 2)),
            fraction=float(params.get("fraction", 0.5)))
    if profile == "maintenance":
        return stream.maintenance_window(
            instance, step, window=int(params.get("window", 4)))
    return stream.burst(instance, int(params.get("burst_size", 4)))


def _run_dynamic_cell(profile: str, params: Params,
                      seed: int) -> Dict[str, object]:
    from ..serve.shard import ShardedQueryService

    n = int(params["n"])
    wave_size = int(params["queries"])
    steps = int(params.get("steps", 3))
    rng = random.Random(seed)
    stream = MutationStream(seed=seed)
    instances = _dynamic_instances(n, seed)
    by_name = {inst.name: inst for inst in instances}
    service = ShardedQueryService(
        list(instances), shards=2, capacity=2, store=None,
        solver="theorem1", build_seed=seed)

    answers = []
    checked: List[bool] = []

    def serve_wave() -> None:
        current = list(by_name.values())
        wave = _wave(rng, current, wave_size)
        wave_answers = service.serve(wave).answers
        answers.extend(wave_answers)
        checked.append(verify_against_centralized(current, wave_answers))

    serve_wave()  # pre-mutation: warm oracles, baseline answers
    applied = skipped = 0
    for step in range(steps):
        name = rng.choice(sorted(by_name))
        result = _apply_step(service, stream, profile, by_name[name],
                             step, params)
        by_name[name] = result.instance
        applied += len(result.applied)
        skipped += len(result.skipped)
        serve_wave()  # post-mutation: rebuilt oracle, carried memo

    totals = service.serve([]).totals()
    inst = instances[0]
    final = list(by_name.values())
    return {
        "n": inst.n,
        "m": inst.m,
        "hop_count": inst.hop_count,
        "rounds": totals.rounds,
        "messages": 0,
        "words": 0,
        "max_link_words": 0,
        "violations": 0,
        "queries": len(answers),
        "epochs": max(i.topology_version for i in final),
        "mutations_applied": applied,
        "mutations_skipped": skipped,
        "invalidations": totals.invalidations,
        "memo_carried": totals.memo_carried,
        "oracle_builds": totals.oracle_builds,
        "batch_solves": totals.batch_solves,
        "solves_saved": totals.solves_saved,
        "correct": bool(all(checked) and applied > 0),
    }


def _apply_step(service, stream: MutationStream, profile: str,
                instance: RPathsInstance, step: int, params: Params):
    batch = _mutation_batch(stream, profile, instance, step, params)
    result = service.apply_mutations(instance.name, batch)
    stream.note_applied(instance.name, result.applied)
    return result


@scenario(
    "dynamic-fault-storm",
    params=[{"n": 48, "queries": 24, "steps": 3, "fraction": 0.1},
            {"n": 96, "queries": 32, "steps": 4, "fraction": 0.1}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 8, "steps": 2,
                   "fraction": 0.15}],
    description="Serving through uncorrelated fault storms: each step "
                "fails a random edge fraction, the shard invalidates "
                "incrementally, and every wave is verified against the "
                "current epoch's centralized truth.",
    tags=("dynamic", "serve", "robustness"),
)
def run_fault_storm(params: Params, seed: int) -> Dict[str, object]:
    return _run_dynamic_cell("storm", params, seed)


@scenario(
    "dynamic-regional-failure",
    params=[{"n": 48, "queries": 24, "steps": 3, "radius": 2,
             "fraction": 0.5},
            {"n": 96, "queries": 32, "steps": 3, "radius": 3,
             "fraction": 0.5}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 8, "steps": 2, "radius": 2,
                   "fraction": 0.5}],
    description="Correlated regional storms: a BFS ball of edges fails "
                "together (rack loss), later steps may heal it; "
                "answers stay exact across epochs.",
    tags=("dynamic", "serve", "robustness"),
)
def run_regional_failure(params: Params, seed: int) -> Dict[str, object]:
    return _run_dynamic_cell("regional", params, seed)


@scenario(
    "dynamic-maintenance-window",
    params=[{"n": 48, "queries": 24, "steps": 4, "window": 4},
            {"n": 96, "queries": 32, "steps": 5, "window": 6}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "queries": 8, "steps": 3, "window": 4}],
    description="Rolling maintenance: a sliding vertex window's edges "
                "are failed for the window and healed when it moves, "
                "modelling planned drain/undrain cycles.",
    tags=("dynamic", "serve", "robustness"),
)
def run_maintenance_window(params: Params, seed: int) -> Dict[str, object]:
    return _run_dynamic_cell("maintenance", params, seed)
