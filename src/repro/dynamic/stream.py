"""Seedable mutation streams and epoch-bumping application.

A *mutation* is one topology change: an edge-weight update, a failure
arrival (the edge leaves the graph), or a healing (it comes back,
possibly with a new weight).  :func:`apply_mutations` applies a batch
to an :class:`~repro.graphs.instance.RPathsInstance` and returns a
**new** instance with the same name, ``topology_version + 1``, and a
freshly re-derived shortest path P — mutations never modify the input
in place, so every epoch's instance stays usable as ground truth for
answers served against it.

Safety: a mutation that would break the problem's preconditions is
*skipped with a structured reason* (closed enum in
:mod:`repro.telemetry.dynamic`) rather than applied — removing the
edge that disconnects s from t or splits the communication graph,
healing an edge that already exists, weight updates on unweighted
instances, and so on.  Skips are deterministic, so a seeded stream
replays bit-identically.

:class:`MutationStream` generates the batches: independent bursts,
correlated *regional* fault storms (all failures inside one BFS ball),
and rolling *maintenance windows* (fail a window of vertices' incident
edges, heal the previous window).  It remembers what it failed so
heals re-install the original weight.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..congest.words import INF
from ..graphs.instance import RPathsInstance
from ..telemetry import dynamic as _dynamic
from ..telemetry.dynamic import (
    MUT_FAIL,
    MUT_HEAL,
    MUT_WEIGHT,
    SKIP_DISCONNECTS,
    SKIP_DUPLICATE_EDGE,
    SKIP_INVALID,
    SKIP_NOOP,
    SKIP_UNKNOWN_EDGE,
    SKIP_UNWEIGHTED,
)

Edge = Tuple[int, int]


@dataclass(frozen=True)
class Mutation:
    """One requested topology change."""

    kind: str  # MUT_WEIGHT | MUT_FAIL | MUT_HEAL
    edge: Edge
    weight: int = 1  # new weight (MUT_WEIGHT / MUT_HEAL)

    @property
    def label(self) -> str:
        u, v = self.edge
        if self.kind == MUT_FAIL:
            return f"fail({u},{v})"
        return f"{self.kind}({u},{v})={self.weight}"


@dataclass(frozen=True)
class AppliedMutation:
    """One applied change, annotated with the weight it displaced.

    ``old_weight`` is what the invalidation tightness checks need: a
    removed/raised edge can only have changed distances if it was
    *tight* under the pre-mutation metric (see
    :func:`repro.serve.oracle.carry_fallback_memo`).
    """

    kind: str
    edge: Edge
    weight: int  # weight after the mutation (0 for MUT_FAIL)
    old_weight: int  # weight before (0 for MUT_HEAL of a new edge)


@dataclass
class MutationResult:
    """Outcome of one :func:`apply_mutations` batch."""

    instance: RPathsInstance  # the new epoch (input untouched)
    applied: List[AppliedMutation] = field(default_factory=list)
    skipped: List[Tuple[Mutation, str]] = field(default_factory=list)
    path_changed: bool = False

    @property
    def epoch(self) -> int:
        return self.instance.topology_version

    def as_metrics(self) -> Dict[str, object]:
        kinds: Dict[str, int] = {}
        for a in self.applied:
            kinds[a.kind] = kinds.get(a.kind, 0) + 1
        reasons: Dict[str, int] = {}
        for _m, reason in self.skipped:
            reasons[reason] = reasons.get(reason, 0) + 1
        return {
            "epoch": self.epoch,
            "applied": len(self.applied),
            "skipped": len(self.skipped),
            "path_changed": self.path_changed,
            "kinds": kinds,
            "skip_reasons": reasons,
        }


def _reachable(n: int, adj: Dict[int, List[int]], source: int,
               target: int) -> bool:
    seen = [False] * n
    seen[source] = True
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if u == target:
            return True
        for v in adj.get(u, ()):
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    return seen[target]


def _connected_undirected(n: int, edges: Sequence[Edge]) -> bool:
    """The communication graph (edges as undirected links)."""
    adj: Dict[int, List[int]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    seen = [False] * n
    seen[0] = True
    queue = deque([0])
    count = 1
    while queue:
        u = queue.popleft()
        for v in adj.get(u, ()):
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(v)
    return count == n


def apply_mutations(instance: RPathsInstance,
                    mutations: Sequence[Mutation],
                    record_telemetry: bool = True) -> MutationResult:
    """Apply a batch, returning the next-epoch instance.

    Unsafe mutations are skipped with a reason; the surviving set is
    applied in order to a working weight map, the edge list is rebuilt
    with stable ordering (existing edges keep their position, heals
    append), and P is re-derived with the deterministic
    parent-tracking SSSP — so the result is a pure function of
    (instance, mutations).
    """
    weights: Dict[Edge, int] = instance.edge_weight_map()
    order: List[Edge] = [(u, v) for u, v, _ in instance.edges]
    s, t, n = instance.s, instance.t, instance.n
    applied: List[AppliedMutation] = []
    skipped: List[Tuple[Mutation, str]] = []

    def skip(m: Mutation, reason: str) -> None:
        skipped.append((m, reason))
        if record_telemetry:
            _dynamic.record_skip(reason)

    def survives_removal(edge: Edge) -> bool:
        """s→t stays reachable and the comm graph stays connected."""
        remaining = [e for e in weights if e != edge]
        adj: Dict[int, List[int]] = {}
        for u, v in remaining:
            adj.setdefault(u, []).append(v)
        return (_reachable(n, adj, s, t)
                and _connected_undirected(n, remaining))

    for m in mutations:
        edge = (int(m.edge[0]), int(m.edge[1]))
        u, v = edge
        if not (0 <= u < n and 0 <= v < n) or u == v:
            skip(m, SKIP_INVALID)
            continue
        if m.kind == MUT_FAIL:
            old = weights.get(edge)
            if old is None:
                skip(m, SKIP_UNKNOWN_EDGE)
                continue
            if not survives_removal(edge):
                skip(m, SKIP_DISCONNECTS)
                continue
            del weights[edge]
            order.remove(edge)
            applied.append(AppliedMutation(MUT_FAIL, edge, 0, old))
        elif m.kind == MUT_HEAL:
            if edge in weights:
                skip(m, SKIP_DUPLICATE_EDGE)
                continue
            w = int(m.weight)
            if w <= 0 or (not instance.weighted and w != 1):
                skip(m, SKIP_INVALID)
                continue
            weights[edge] = w
            order.append(edge)
            applied.append(AppliedMutation(MUT_HEAL, edge, w, 0))
        elif m.kind == MUT_WEIGHT:
            if not instance.weighted:
                skip(m, SKIP_UNWEIGHTED)
                continue
            old = weights.get(edge)
            if old is None:
                skip(m, SKIP_UNKNOWN_EDGE)
                continue
            w = int(m.weight)
            if w <= 0:
                skip(m, SKIP_INVALID)
                continue
            if w == old:
                skip(m, SKIP_NOOP)
                continue
            weights[edge] = w
            applied.append(AppliedMutation(MUT_WEIGHT, edge, w, old))
        else:
            skip(m, SKIP_INVALID)

    if not applied:
        # Nothing changed: same epoch, same instance object semantics.
        return MutationResult(instance=instance, applied=[],
                              skipped=skipped, path_changed=False)

    new_edges = [(u, v, weights[(u, v)]) for u, v in order]
    successor = RPathsInstance(
        n=n, edges=new_edges, path=list(instance.path),
        weighted=instance.weighted, name=instance.name,
        topology_version=instance.topology_version + 1)
    new_path = successor.shortest_path_to(t, source=s)
    successor.path = new_path
    # Re-deriving P invalidated the prefix cache keyed on the old path.
    successor._path_prefix = None
    if record_telemetry:
        for a in applied:
            _dynamic.record_mutation(a.kind)
    return MutationResult(
        instance=successor, applied=applied, skipped=skipped,
        path_changed=new_path != list(instance.path))


class MutationStream:
    """Seeded generator of mutation batches against live instances.

    Stateful on purpose: failures it generated are remembered per
    instance name (with their pre-failure weight), so later heals
    re-install exactly what a storm removed.  All randomness flows
    from the constructor seed, so a stream replays bit-identically.
    """

    def __init__(self, seed: int = 0, weight_low: int = 1,
                 weight_high: int = 8) -> None:
        self._rng = random.Random(seed)
        self.weight_low = weight_low
        self.weight_high = weight_high
        #: instance name -> {edge: original weight} failed by us.
        self._failed: Dict[str, Dict[Edge, int]] = {}

    # -- bookkeeping ---------------------------------------------------------

    def note_applied(self, instance_name: str,
                     applied: Sequence[AppliedMutation]) -> None:
        """Record what actually landed (skipped mutations must not
        enter the heal pool)."""
        pool = self._failed.setdefault(instance_name, {})
        for a in applied:
            if a.kind == MUT_FAIL:
                pool[a.edge] = a.old_weight
            elif a.kind == MUT_HEAL:
                pool.pop(a.edge, None)

    def failed_edges(self, instance_name: str) -> List[Edge]:
        return sorted(self._failed.get(instance_name, {}))

    # -- batch shapes --------------------------------------------------------

    def burst(self, instance: RPathsInstance, count: int,
              heal_fraction: float = 0.3) -> List[Mutation]:
        """An uncorrelated mixed batch: failures, heals of our own
        earlier failures, and (weighted instances) weight changes."""
        rng = self._rng
        pool = [(u, v) for u, v, _ in instance.edges]
        healable = self.failed_edges(instance.name)
        out: List[Mutation] = []
        for _ in range(count):
            roll = rng.random()
            if healable and roll < heal_fraction:
                edge = healable.pop(rng.randrange(len(healable)))
                w = self._failed[instance.name].get(edge, 1)
                out.append(Mutation(MUT_HEAL, edge, w))
            elif instance.weighted and roll > 0.7 and pool:
                edge = rng.choice(pool)
                out.append(Mutation(
                    MUT_WEIGHT, edge,
                    rng.randint(self.weight_low, self.weight_high)))
            elif pool:
                out.append(Mutation(MUT_FAIL, rng.choice(pool)))
        return out

    def storm(self, instance: RPathsInstance,
              fraction: float = 0.1) -> List[Mutation]:
        """Fail ``fraction`` of the edges, sampled uniformly."""
        pool = [(u, v) for u, v, _ in instance.edges]
        count = max(1, int(len(pool) * fraction))
        picks = self._rng.sample(pool, min(count, len(pool)))
        return [Mutation(MUT_FAIL, e) for e in picks]

    def regional_storm(self, instance: RPathsInstance,
                       center: Optional[int] = None, radius: int = 2,
                       fraction: float = 0.5) -> List[Mutation]:
        """Correlated failures: ``fraction`` of the edges whose both
        endpoints lie in the BFS ball around ``center``."""
        rng = self._rng
        if center is None:
            center = rng.randrange(instance.n)
        ball: Set[int] = {center}
        frontier = [center]
        adj: Dict[int, Set[int]] = {}
        for u, v, _ in instance.edges:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        for _ in range(radius):
            frontier = [w for u in frontier
                        for w in adj.get(u, ()) if w not in ball]
            ball.update(frontier)
        regional = [(u, v) for u, v, _ in instance.edges
                    if u in ball and v in ball]
        count = max(1, int(len(regional) * fraction)) if regional else 0
        picks = rng.sample(regional, min(count, len(regional)))
        return [Mutation(MUT_FAIL, e) for e in picks]

    def maintenance_window(self, instance: RPathsInstance, step: int,
                           window: int = 4) -> List[Mutation]:
        """Rolling maintenance: fail the edges incident to window
        ``step``'s vertices, heal the previous window's failures."""
        lo = (step * window) % max(1, instance.n)
        down = set(range(lo, min(lo + window, instance.n)))
        out: List[Mutation] = []
        pool = self._failed.get(instance.name, {})
        for edge in self.failed_edges(instance.name):
            if edge[0] not in down and edge[1] not in down:
                out.append(Mutation(MUT_HEAL, edge,
                                    pool.get(edge, 1)))
        for u, v, _ in instance.edges:
            if u in down or v in down:
                out.append(Mutation(MUT_FAIL, (u, v)))
        return out

    # -- one-call convenience ------------------------------------------------

    def step(self, instance: RPathsInstance, profile: str = "burst",
             **kwargs) -> MutationResult:
        """Generate one batch per ``profile``, apply it, and record
        the applied failures/heals for future heals."""
        if profile == "burst":
            batch = self.burst(instance,
                               kwargs.pop("count", 4), **kwargs)
        elif profile == "storm":
            batch = self.storm(instance, **kwargs)
        elif profile == "regional":
            batch = self.regional_storm(instance, **kwargs)
        elif profile == "maintenance":
            batch = self.maintenance_window(instance, **kwargs)
        else:
            raise ValueError(
                f"unknown mutation profile {profile!r}; expected "
                "burst, storm, regional, or maintenance")
        result = apply_mutations(instance, batch)
        self.note_applied(instance.name, result.applied)
        return result


#: Mutation-stream profiles the CLI / scenarios accept.
PROFILES = ("burst", "storm", "regional", "maintenance")


def ground_truth_length(instance: RPathsInstance, s: int, t: int,
                        edge: Edge) -> int:
    """d(s, t) in G \\ {edge} on the *current* epoch — one SSSP."""
    dist = instance.dijkstra(s, avoid_edges=frozenset([edge]))
    return INF if dist[t] >= INF else dist[t]
