"""Extensions beyond the paper's core results: the neighbouring
undirected case ([HS01]/[MMG89] structure, [MR24b] round profile)."""

from .undirected import (
    UndirectedReport,
    branch_labels,
    crossing_edge_replacement_lengths,
    is_symmetric,
    random_undirected_instance,
    solve_rpaths_undirected,
    symmetrize,
    undirected_replacement_lengths,
)

__all__ = [
    "UndirectedReport",
    "branch_labels",
    "crossing_edge_replacement_lengths",
    "is_symmetric",
    "random_undirected_instance",
    "solve_rpaths_undirected",
    "symmetrize",
    "undirected_replacement_lengths",
]
