"""Extension: RPaths on *undirected* graphs — the Table 1 neighbours.

The paper's landscape (Section 1 and the conclusions) contrasts its
directed Θ̃(n^{2/3}+D) bound with the undirected case, where Manoharan
and Ramachandran [MR24b] give an O(T_SSSP + h_st)-round algorithm that
nearly matches the Ω̃(√n + D) lower bound.  This module builds that
neighbouring system:

* the classical **crossing-edge structure** of Hershberger–Suri [HS01]
  and Malik–Mittal–Gupta [MMG89]: removing the i-th path edge from the
  shortest-path tree rooted at s splits V into L_i (s's side: vertices
  whose tree path branches off P at position ≤ i) and R_i; the
  replacement length is

      repl(i) = min over edges {x, y} with branch(x) ≤ i < branch(y)
                of  d_s(x) + w(x, y) + d_t(y);

* a **centralized** evaluator of that formula (tested against the
  per-edge-deletion oracle), and

* a **distributed** O(T_SSSP + h_st + D)-round algorithm matching the
  [MR24b] round profile: two SSSP computations, an O(D) branch-label
  downcast, one candidate exchange across every edge, and the
  pipelined staggered convergecast (h_st waves, O(h_st + D) rounds)
  followed by a Lemma 2.4 broadcast of the h_st results.

Undirected graphs are represented as symmetric digraphs (both
orientations present with equal weight); deleting the undirected edge
{v_i, v_{i+1}} removes both orientations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..congest.bfs import bfs_tree, sssp_distances_weighted
from ..congest.broadcast import (
    broadcast_messages,
    staggered_convergecast_min,
)
from ..congest.errors import InvalidInstanceError
from ..congest.metrics import RoundLedger
from ..congest.network import resolve_fabric
from ..congest.spanning_tree import build_spanning_tree
from ..congest.words import INF, clamp_inf
from ..graphs.instance import RPathsInstance


def symmetrize(edges, weights=None) -> List[Tuple[int, int, int]]:
    """Both orientations of every undirected edge, deduplicated."""
    out: Dict[Tuple[int, int], int] = {}
    for edge in edges:
        if len(edge) == 2:
            u, v = edge
            w = (weights or {}).get((u, v),
                                    (weights or {}).get((v, u), 1))
        else:
            u, v, w = edge
        out[(u, v)] = w
        out[(v, u)] = w
    return [(u, v, w) for (u, v), w in sorted(out.items())]


def is_symmetric(instance: RPathsInstance) -> bool:
    """Whether every directed edge has an equal-weight reverse twin."""
    weights = instance.edge_weight_map()
    return all(weights.get((v, u)) == w for (u, v), w in weights.items())


def require_undirected(instance: RPathsInstance) -> None:
    if not is_symmetric(instance):
        raise InvalidInstanceError(
            "undirected RPaths needs a symmetric instance "
            "(build with symmetrize())")


def undirected_edge_pair(u: int, v: int):
    return frozenset([(u, v), (v, u)])


# -- centralized oracle and crossing-edge evaluator -----------------------


def undirected_replacement_lengths(
    instance: RPathsInstance,
) -> List[int]:
    """Ground truth: delete *both* orientations of each P-edge."""
    require_undirected(instance)
    out = []
    for u, v in instance.path_edges():
        dist = instance.dijkstra(
            instance.s, avoid_edges=undirected_edge_pair(u, v))
        out.append(clamp_inf(dist[instance.t]))
    return out


def _sssp_with_parents(instance: RPathsInstance, source: int,
                       ) -> Tuple[List[int], List[int]]:
    import heapq
    adj = instance.adjacency()
    dist = [INF] * instance.n
    parent = [-1] * instance.n
    dist[source] = 0
    parent[source] = source
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v] or (nd == dist[v] and u < parent[v]):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def branch_labels(instance: RPathsInstance,
                  parent: List[int]) -> List[int]:
    """branch(v): position of the last P-vertex on v's tree path from s.

    The shortest-path tree is made P-respecting by the parent
    tie-breaking (P-vertices prefer their P predecessor: validation
    guarantees P prefixes are shortest, and the tie-break by smaller
    parent id is overridden here explicitly for P vertices).
    """
    labels = [-1] * instance.n
    for i, v in enumerate(instance.path):
        labels[v] = i
    for v in range(instance.n):
        if parent[v] >= 0 and labels[v] < 0:
            # iterative walk to the nearest labelled ancestor (avoids
            # recursion limits on long tree chains)
            chain = []
            cursor = v
            while labels[cursor] < 0:
                chain.append(cursor)
                cursor = parent[cursor]
            base = labels[cursor]
            for u in chain:
                labels[u] = base
    return labels


def crossing_edge_replacement_lengths(
    instance: RPathsInstance,
) -> List[int]:
    """The Hershberger–Suri formula, evaluated centrally."""
    require_undirected(instance)
    h = instance.hop_count
    dist_s, parent_s = _sssp_with_parents(instance, instance.s)
    dist_t, _ = _sssp_with_parents(instance, instance.t)
    branch = branch_labels(instance, parent_s)
    p_edges = instance.path_edge_set()

    out = [INF] * h
    for u, v, w in instance.edges:
        if (u, v) in p_edges or (v, u) in p_edges:
            continue
        a, b = branch[u], branch[v]
        if a >= b:
            continue
        if dist_s[u] >= INF or dist_t[v] >= INF:
            continue
        value = dist_s[u] + w + dist_t[v]
        for i in range(a, b):
            if value < out[i]:
                out[i] = value
    return [clamp_inf(x) for x in out]


# -- the distributed algorithm ([MR24b]'s undirected round profile) --------


@dataclass
class UndirectedReport:
    """Output of the distributed undirected RPaths execution."""

    instance_name: str
    lengths: List[int]
    ledger: RoundLedger

    @property
    def rounds(self) -> int:
        return self.ledger.rounds


def solve_rpaths_undirected(
    instance: RPathsInstance,
    fabric: str = "fast",
) -> UndirectedReport:
    """Distributed undirected RPaths in O(T_SSSP + h_st + D) rounds.

    Unweighted instances use BFS for the two SSSPs (T_SSSP = O(D));
    weighted ones use the exact time-expanded SSSP (T_SSSP = weighted
    eccentricity — the folklore algorithm; [MR24b]'s sophisticated
    T_SSSP is out of scope, the *additive h_st* structure is the point).
    """
    fabric = resolve_fabric(fabric)
    require_undirected(instance)
    h = instance.hop_count
    position = {v: i for i, v in enumerate(instance.path)}
    net = instance.build_network(fabric=fabric)
    tree = build_spanning_tree(net)

    with net.ledger.phase("undirected-rpaths"):
        # -- two SSSP computations (from s, and to t).
        if instance.weighted:
            dist_s = sssp_distances_weighted(net, instance.s,
                                             phase="sssp-from-s")
            dist_t = sssp_distances_weighted(net, instance.t,
                                             direction="in",
                                             phase="sssp-to-t")
            # Parent pointers for the s-tree: each vertex picks the
            # neighbour certifying its distance (one exchange).
            parent_s = _distributed_parents(net, instance, dist_s)
        else:
            dist_s, parent_s = bfs_tree(net, instance.s,
                                        phase="bfs-from-s")
            dist_t = sssp_distances_weighted(net, instance.t,
                                             direction="in",
                                             phase="bfs-to-t")
            parent_s = _path_respecting_parents(
                instance, dist_s, parent_s)

        # -- branch labels flood down the s-tree: O(depth) rounds.
        branch = _distributed_branch_labels(
            net, instance, parent_s, position)

        # -- candidate exchange: both endpoints of every edge swap
        # (branch, d_t) — one round, one small message per link.
        outbox: Dict[int, list] = {}
        for u, v, w in instance.edges:
            outbox.setdefault(u, []).append(
                (v, ("cand", branch[u], dist_t[u])))
        with net.ledger.phase("candidate-exchange"):
            inbox = net.exchange(outbox)
        info: Dict[int, Dict[int, Tuple[int, int]]] = {}
        for v, arrivals in inbox.items():
            for sender, (_, b, dt) in arrivals:
                info.setdefault(v, {})[sender] = (b, dt)

        # Each vertex x derives local candidates (interval, value) from
        # its incident non-P edges.
        p_edges = instance.path_edge_set()
        local: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(instance.n)
        ]
        weights = instance.edge_weight_map()
        for u, v, w in instance.edges:
            if (u, v) in p_edges or (v, u) in p_edges:
                continue
            b_v, dt_v = info.get(u, {}).get(v, (None, None))
            if b_v is None:
                continue
            a = branch[u]
            if a < b_v and dist_s[u] < INF and dt_v < INF:
                local[u].append((a, b_v, dist_s[u] + w + dt_v))

        # -- h_st pipelined min-aggregations (one per failed edge).
        def local_min(vertex: int, wave: int) -> int:
            best = INF
            for a, b, value in local[vertex]:
                if a <= wave < b and value < best:
                    best = value
            return best

        results = staggered_convergecast_min(
            net, tree, local_min, count=h, identity=INF,
            phase="interval-aggregation")

        # -- disseminate the h_st results (Lemma 2.4: O(h_st + D)).
        broadcast_messages(
            net, tree,
            {tree.root: [("repl", i, clamp_inf(results[i]))
                         for i in range(h)]},
            phase="result-broadcast")

    return UndirectedReport(
        instance_name=instance.name,
        lengths=[clamp_inf(x) for x in results],
        ledger=net.ledger,
    )


def _path_respecting_parents(instance, dist_s, parent_s):
    """Force each P vertex's tree parent to be its P predecessor.

    Valid because P prefixes are shortest (instance validation), so the
    swap preserves the shortest-path-tree property while making branch
    labels well-defined.
    """
    parent = list(parent_s)
    for i in range(1, len(instance.path)):
        parent[instance.path[i]] = instance.path[i - 1]
    return parent


def _distributed_parents(net, instance, dist_s):
    """One exchange: every vertex learns a neighbour certifying its
    distance (ties broken toward P predecessors, then smaller id)."""
    weights = instance.edge_weight_map()
    outbox = {}
    for u, v, w in instance.edges:
        outbox.setdefault(u, []).append((v, ("dist", dist_s[u])))
    with net.ledger.phase("parent-exchange"):
        inbox = net.exchange(outbox)
    parent = [-1] * instance.n
    parent[instance.s] = instance.s
    for v, arrivals in inbox.items():
        if v == instance.s:
            continue
        best = None
        for sender, (_, d_u) in arrivals:
            w = weights[(sender, v)]
            if d_u < INF and d_u + w == dist_s[v]:
                if best is None or sender < best:
                    best = sender
        if best is not None:
            parent[v] = best
    return _path_respecting_parents(instance, dist_s, parent)


def _distributed_branch_labels(net, instance, parent, position):
    """Flood branch labels down the s-tree (O(depth) rounds)."""
    n = instance.n
    children: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        if parent[v] >= 0 and parent[v] != v:
            children[parent[v]].append(v)
    labels = [-1] * n
    for v, i in position.items():
        labels[v] = i
    with net.ledger.phase("branch-downcast"):
        frontier = [instance.s]
        while frontier:
            outbox: Dict[int, list] = {}
            nxt = []
            for u in frontier:
                for v in children[u]:
                    outbox.setdefault(u, []).append(
                        (v, ("branch", labels[u])))
                    nxt.append(v)
            if outbox:
                inbox = net.exchange(outbox)
                for v, arrivals in inbox.items():
                    if labels[v] < 0:
                        labels[v] = arrivals[0][1][1]
            frontier = nxt
    return labels


# -- generators --------------------------------------------------------------


def random_undirected_instance(
    n: int,
    avg_degree: float = 4.0,
    seed: int = 0,
    weighted: bool = False,
    max_weight: int = 9,
    name: str = "",
) -> RPathsInstance:
    """Random connected undirected instance with an extracted shortest
    path of maximal eccentricity from vertex 0."""
    rng = random.Random(seed)
    edges: Set[Tuple[int, int]] = set()
    for v in range(1, n):
        u = rng.randrange(v)
        edges.add((u, v))
    target = int(avg_degree * n / 2)
    while len(edges) < target:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.add((min(u, v), max(u, v)))
    weights = None
    if weighted:
        weights = {e: rng.randint(1, max_weight) for e in edges}
    sym = symmetrize(edges, weights)
    instance = RPathsInstance(
        n=n, edges=sym, path=[0, 1], weighted=weighted,
        name=name or f"undirected(n={n},seed={seed})")
    dist = instance.dijkstra(0)
    t = max(range(n), key=lambda v: (dist[v] if dist[v] < INF else -1, v))
    _, parent = _sssp_with_parents(instance, 0)
    path = [t]
    while path[-1] != 0:
        path.append(parent[path[-1]])
    path.reverse()
    instance.path = path
    instance.validate()
    return instance
