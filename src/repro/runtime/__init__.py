"""repro.runtime — scenario registry, parallel executor, result cache.

The runtime turns ad-hoc benchmark loops into declarative experiments:

* :mod:`~repro.runtime.registry` — ``Scenario`` dataclasses and the
  ``@scenario`` decorator; the standard catalog
  (:mod:`~repro.runtime.catalog`) registers one scenario per
  experimental regime.
* :mod:`~repro.runtime.executor` — fans scenario x seed cells out over
  a process pool with per-cell timeouts.
* :mod:`~repro.runtime.store` — content-addressed JSONL result store
  keyed by (scenario, params, seed, code version); re-runs are cache
  hits and regression diffs are :func:`diff_results`.
* :mod:`~repro.runtime.suite` — :func:`run_suite` wires the three
  together and backs the ``repro suite`` CLI.

See DESIGN.md for the end-to-end walkthrough.
"""

from .measure import ALGORITHMS, Measurement, measure_algorithm
from .registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register,
    scenario,
    scenario_names,
    unregister,
)
from .results import CellResult, CellSpec
from .executor import default_jobs, execute_cell, pool_map, run_cells
from .store import (
    DiffReport,
    ResultStore,
    cell_key,
    code_version,
    diff_results,
)
from .suite import SuiteReport, expand_cells, format_suite_report, run_suite

__all__ = [
    "ALGORITHMS",
    "CellResult",
    "CellSpec",
    "DiffReport",
    "Measurement",
    "ResultStore",
    "Scenario",
    "SuiteReport",
    "all_scenarios",
    "cell_key",
    "code_version",
    "default_jobs",
    "diff_results",
    "execute_cell",
    "expand_cells",
    "format_suite_report",
    "get_scenario",
    "measure_algorithm",
    "pool_map",
    "register",
    "run_cells",
    "run_suite",
    "scenario",
    "scenario_names",
    "unregister",
]
