"""Shared-memory topology publication for the ``parallel=`` fan-out.

A run's :class:`~repro.congest.topology.CSRTopology` is frozen by
contract, so its array export can back worker processes as well as the
parent: :func:`publish_topology` copies the export **once** into a
``multiprocessing.shared_memory`` block and hands back a picklable
:class:`SharedTopologyHandle` (shm name + per-field offset/dtype/len —
a few hundred bytes regardless of n).  Workers
:func:`attach_topology`, getting read-only zero-copy views over the
same physical pages; the per-vertex Python-list structures the message
lanes need are rebuilt lazily on first access, so vector-fabric
workers never pay for them.

The fan-out itself (:func:`fanout_kbfs`) ships independent
k-source-BFS calls through :func:`~repro.runtime.executor.pool_map`.
Bit-identity with the serial path holds for results *and* ledgers:

* each call is an already-independent primitive invocation (the
  forward/backward landmark pair of Lemma 5.4/5.6, the per-(failed
  edge, chunk) solves of the serve planner) — the serial path never
  threads state between them;
* each worker replicates the parent's open phase stack on a fresh
  ledger, so charges land under exactly the serial phase names, and
  the parent folds the snapshots back **in serial call order** via
  :meth:`~repro.congest.metrics.RoundLedger.merge_phases`.  Phase
  stats only ever hold sums and maxima, so the merged ledger equals
  the serial one phase by phase, column by column
  (``tests/test_scaleout.py`` asserts both).

Every lifecycle transition is counted
(``repro_sharedmem_events_total``) and every fan-out records its
worker width (``repro_parallel_fanout_*``) — see
:mod:`repro.telemetry.scale`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..congest.network import CongestNetwork
from ..congest.topology import CSRTopology, TopologyArrays, _numpy
from ..telemetry import scale as _scale

#: Extra array shipped beside :attr:`TopologyArrays.FIELDS`: the
#: input-order dense edge keys, so ``directed_edges()`` (and anything
#: else that needs insertion order) survives the round-trip.
_EDGE_ORDER = "edge_order"

#: CSRTopology slots an attached instance rebuilds on first access —
#: the message lanes' Python structures, which vector workers skip.
_LAZY_FIELDS = frozenset((
    "out_lists", "in_lists", "nbr_lists",
    "_link_index", "_weight_by_key", "_edge_order",
))


def _shared_memory():
    from multiprocessing import shared_memory
    return shared_memory


@dataclass(frozen=True)
class SharedTopologyHandle:
    """Picklable recipe for attaching to a published topology."""

    shm_name: str
    n: int
    num_edges: int
    num_dirlinks: int
    #: ``(field name, byte offset, dtype name, element count)`` per
    #: exported array, :attr:`TopologyArrays.FIELDS` order plus
    #: :data:`_EDGE_ORDER` last.
    fields: Tuple[Tuple[str, int, str, int], ...]


class PublishedTopology:
    """A topology export living in one shared-memory block.

    Create via :func:`publish_topology`; the parent owns the block and
    must :meth:`close` it (unlink included) when the fan-out is done —
    ``solve_rpaths`` does so in a ``finally``.  Usable as a context
    manager.
    """

    def __init__(self, topology: CSRTopology) -> None:
        np = _numpy()
        arr = topology.arrays()
        exports = [(name, getattr(arr, name))
                   for name, _role in TopologyArrays.FIELDS]
        exports.append(
            (_EDGE_ORDER,
             np.asarray(topology._edge_order, dtype=np.int64)))
        total = sum(int(a.nbytes) for _name, a in exports)
        self._shm = _shared_memory().SharedMemory(
            create=True, size=max(1, total))
        fields: List[Tuple[str, int, str, int]] = []
        offset = 0
        for name, a in exports:
            view = np.ndarray(a.shape, dtype=a.dtype,
                              buffer=self._shm.buf, offset=offset)
            view[:] = a  # the one copy; workers map, never copy
            fields.append((name, offset, a.dtype.name, int(a.size)))
            offset += int(a.nbytes)
        self.handle = SharedTopologyHandle(
            shm_name=self._shm.name, n=topology.n,
            num_edges=topology.num_edges,
            num_dirlinks=topology.num_dirlinks,
            fields=tuple(fields))
        self.nbytes = total
        self._closed = False
        _scale.record_shm(_scale.SHM_PUBLISH)

    def close(self) -> None:
        """Detach and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        _scale.record_shm(_scale.SHM_DETACH)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _scale.record_shm(_scale.SHM_UNLINK)

    def __enter__(self) -> "PublishedTopology":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def publish_topology(topology: CSRTopology) -> PublishedTopology:
    """Copy ``topology``'s frozen array export into shared memory."""
    return PublishedTopology(topology)


class _AttachedTopology(CSRTopology):
    """A :class:`CSRTopology` whose arrays are shared-buffer views.

    The array side (everything the vector kernels and
    ``send_arrays`` touch) is zero-copy and ready immediately; the
    Python-list side materializes lazily via :meth:`__getattr__` —
    ``__slots__`` leaves unset slots raising ``AttributeError``, which
    is exactly the hook — so a worker that stays on the kernel lanes
    never rebuilds it.
    """

    __slots__ = ("_shm", "_edge_order_view")

    def __init__(self) -> None:  # noqa: D401 - built by attach_topology
        pass

    def __getattr__(self, name: str):
        if name in _LAZY_FIELDS:
            _materialize(self)
            return getattr(self, name)
        raise AttributeError(name)


def _unflatten(indptr, indices, n: int) -> List[List[int]]:
    flat = indices.tolist()
    ptr = indptr.tolist()
    return [flat[ptr[v]:ptr[v + 1]] for v in range(n)]


def _materialize(topo: _AttachedTopology) -> None:
    """Rebuild the message lanes' Python structures from the arrays."""
    arr = topo._arrays
    n = topo.n
    topo.out_lists = _unflatten(arr.out_indptr, arr.out_indices, n)
    topo.in_lists = _unflatten(arr.in_indptr, arr.in_indices, n)
    nbr_lists = _unflatten(arr.nbr_indptr, arr.nbr_indices, n)
    topo.nbr_lists = nbr_lists
    link_index: Dict[int, int] = {}
    ptr = arr.nbr_indptr.tolist()
    for v in range(n):
        base = ptr[v]
        for offset, u in enumerate(nbr_lists[v]):
            link_index[u * n + v] = base + offset
    topo._link_index = link_index
    topo._weight_by_key = dict(
        zip(arr.out_keys.tolist(), arr.out_weights.tolist()))
    topo._edge_order = topo._edge_order_view.tolist()


def attach_topology(handle: SharedTopologyHandle) -> CSRTopology:
    """Map a published topology into this process (zero-copy).

    The returned topology holds the shared-memory mapping open; call
    :func:`detach_topology` (workers do, in a ``finally``) when done.
    """
    np = _numpy()
    shm = _shared_memory().SharedMemory(name=handle.shm_name)
    # POSIX attach registers the segment with the resource tracker
    # like a create does.  Under the fork start method the tracker
    # process is shared with the owner, so the duplicate register is
    # a set no-op and must be left alone (unregistering here would
    # strip the owner's entry).  Under spawn this process has its own
    # tracker, whose exit-time cleanup would unlink the owner's live
    # block — there the borrower must unregister (best-effort; the
    # attribute is private).
    try:  # pragma: no cover - start-method/version dependent
        import multiprocessing as _mp
        if _mp.get_start_method(allow_none=True) != "fork":
            from multiprocessing import resource_tracker
            resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    views: Dict[str, object] = {}
    for name, offset, dtype, count in handle.fields:
        view = np.ndarray((count,), dtype=np.dtype(dtype),
                          buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views[name] = view
    topo = _AttachedTopology()
    topo.n = handle.n
    topo.num_edges = handle.num_edges
    topo.num_dirlinks = handle.num_dirlinks
    arrays = TopologyArrays._from_arrays(views)
    topo._arrays = arrays
    topo._send_cache = {}
    topo._link_pairs = None
    # CSR/link fields double as the plain-list attributes the scalar
    # accessors read; the array views serve both (int() coercion at
    # the few tuple-facing call sites is the callers' concern).
    for name in ("out_indptr", "out_indices", "in_indptr",
                 "in_indices", "nbr_indptr", "nbr_indices",
                 "link_receiver"):
        setattr(topo, name, views[name])
    topo._edge_order_view = views[_EDGE_ORDER]
    topo._shm = shm
    _scale.record_shm(_scale.SHM_ATTACH)
    return topo


def detach_topology(topo: CSRTopology) -> None:
    """Close this process's mapping (the owner unlinks, not us)."""
    shm = getattr(topo, "_shm", None)
    if shm is not None:
        shm.close()
        _scale.record_shm(_scale.SHM_DETACH)


# -- the fan-out --------------------------------------------------------------


def fanout_ready(net: CongestNetwork, parallel: Optional[int],
                 shared: Optional[PublishedTopology],
                 delay=None) -> bool:
    """Whether a ``parallel=`` fan-out may replace the serial calls.

    Gates, each preserving the bit-identity/fidelity contract:
    ``parallel >= 2`` workers requested; a published topology to
    attach to; no ``delay`` callable (no stable pickled identity); no
    ``strict`` bandwidth mode and no link-total recording (both keep
    per-exchange state on the parent network that a worker snapshot
    cannot replicate).
    """
    return (parallel is not None and parallel >= 2
            and shared is not None
            and delay is None
            and not net.strict
            and not net.record_link_totals)


def _kbfs_worker(payload: tuple):
    """Run one k-source hop-BFS against the shared topology.

    Module-level (picklable by reference).  Returns ``(dist table,
    ledger phase snapshot)``; the parent merges the snapshot.
    """
    (handle, sources, hop_limit, direction, avoid_edges,
     bandwidth_words, fabric, phase_stack, phase, max_rounds) = payload
    from ..congest.multisource import multi_source_hop_bfs

    telemetry.maybe_enable_from_env()
    topo = attach_topology(handle)
    try:
        net = CongestNetwork(
            handle.n, (), bandwidth_words=bandwidth_words,
            fabric=fabric, topology=topo)
        with contextlib.ExitStack() as stack:
            # Replicate the parent's open phases so every charge lands
            # under the same names the serial run would use.
            for name in phase_stack:
                stack.enter_context(net.ledger.phase(name))
            dist = multi_source_hop_bfs(
                net, list(sources), hop_limit, direction=direction,
                avoid_edges=avoid_edges, phase=phase,
                max_rounds=max_rounds)
        return dist, net.ledger.phase_snapshot()
    finally:
        detach_topology(topo)
        telemetry.flush()


def fanout_kbfs(
    net: CongestNetwork,
    shared: PublishedTopology,
    parallel: int,
    calls: Sequence[dict],
    site: str,
) -> List[List[List[int]]]:
    """Fan independent ``multi_source_hop_bfs`` calls over the pool.

    ``calls`` entries carry the call kwargs (``sources``,
    ``hop_limit``, ``direction``, ``avoid_edges``, ``phase``, optional
    ``max_rounds``).  Distance tables come back in call order;
    every worker ledger is merged into ``net.ledger`` in call order,
    reproducing the serial ledger exactly (see the module docstring).
    """
    from .executor import pool_map

    phase_stack = tuple(net.ledger.current_phases[1:])
    payloads = [
        (shared.handle, tuple(c["sources"]), c["hop_limit"],
         c.get("direction", "out"), c.get("avoid_edges"),
         net.bandwidth_words, net.fabric, phase_stack,
         c.get("phase"), c.get("max_rounds"))
        for c in calls
    ]
    width = min(max(1, parallel), len(payloads))
    _scale.record_fanout(site, width)
    outcomes = pool_map(_kbfs_worker, payloads, jobs=width)
    dists: List[List[List[int]]] = []
    for dist, phases in outcomes:
        net.ledger.merge_phases(phases)
        dists.append(dist)
    return dists
