"""Declarative scenario registry.

A :class:`Scenario` bundles everything needed to reproduce one slice of
the paper's experimental landscape: a *run function* (build an instance,
run a solver, return metrics), the parameter grid to sweep, and the seed
list.  Scenarios register themselves with the :func:`scenario`
decorator; the executor and the CLI only ever see scenario *names*, so
cells stay picklable and the registry is the single source of truth.

The standard catalog lives in :mod:`repro.runtime.catalog` and is
imported lazily on first registry access, so ``import repro`` stays
light and catalog <-> registry imports cannot cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .results import CellSpec

#: A scenario run function: (params, seed) -> flat metrics mapping.
RunFn = Callable[[Dict[str, object], int], Dict[str, object]]


@dataclass
class Scenario:
    """One registered experiment family."""

    name: str
    run: RunFn
    params: List[Dict[str, object]]
    seeds: List[int]
    description: str = ""
    tags: Tuple[str, ...] = ()
    #: Tiny parameter points used by ``--smoke`` runs and CI; default to
    #: the first full parameter point / first seed.
    smoke_params: Optional[List[Dict[str, object]]] = None
    smoke_seeds: Optional[List[int]] = None

    def cells(self, smoke: bool = False) -> List[CellSpec]:
        """Expand the scenario into its cell grid (params x seeds)."""
        params = self.params
        seeds = self.seeds
        if smoke:
            params = self.smoke_params or self.params[:1]
            seeds = self.smoke_seeds or self.seeds[:1]
        return [CellSpec.make(self.name, p, s)
                for p in params for s in seeds]

    def run_cell(self, params: Mapping[str, object],
                 seed: int) -> Dict[str, object]:
        return self.run(dict(params), seed)


_REGISTRY: Dict[str, Scenario] = {}
_catalog_loaded = False


def register(scen: Scenario) -> Scenario:
    """Register a scenario object directly (tests use this)."""
    if scen.name in _REGISTRY:
        raise ValueError(f"scenario {scen.name!r} already registered")
    if not scen.params or not scen.seeds:
        raise ValueError(f"scenario {scen.name!r} has an empty grid")
    _REGISTRY[scen.name] = scen
    return scen


def unregister(name: str) -> None:
    """Remove a scenario (test isolation helper)."""
    _REGISTRY.pop(name, None)


def scenario(
    name: str,
    params: Sequence[Mapping[str, object]],
    seeds: Sequence[int],
    description: str = "",
    tags: Sequence[str] = (),
    smoke_params: Optional[Sequence[Mapping[str, object]]] = None,
    smoke_seeds: Optional[Sequence[int]] = None,
) -> Callable[[RunFn], RunFn]:
    """Decorator: register the function as scenario ``name``.

    The decorated function is returned unchanged (it stays a plain
    module-level function, so worker processes can re-import it).
    """

    def wrap(fn: RunFn) -> RunFn:
        register(Scenario(
            name=name,
            run=fn,
            params=[dict(p) for p in params],
            seeds=list(seeds),
            description=description or (fn.__doc__ or "").strip().split(
                "\n")[0],
            tags=tuple(tags),
            smoke_params=(None if smoke_params is None
                          else [dict(p) for p in smoke_params]),
            smoke_seeds=(None if smoke_seeds is None
                         else list(smoke_seeds)),
        ))
        return fn

    return wrap


def _ensure_catalog() -> None:
    global _catalog_loaded
    if not _catalog_loaded:
        # Roll back partial registrations if the catalog import dies,
        # so a retry re-imports cleanly instead of reporting either a
        # silently partial registry or spurious duplicate names.
        before = set(_REGISTRY)
        try:
            from . import catalog  # noqa: F401  (imports register)
        except BaseException:
            for name in set(_REGISTRY) - before:
                del _REGISTRY[name]
            raise
        _catalog_loaded = True


def get_scenario(name: str) -> Scenario:
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}") from None


def all_scenarios() -> List[Scenario]:
    _ensure_catalog()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def scenario_names() -> List[str]:
    _ensure_catalog()
    return sorted(_REGISTRY)
