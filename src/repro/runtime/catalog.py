"""The standard scenario catalog.

Every experimental regime the repository knows about is registered here
as a declarative :class:`~repro.runtime.registry.Scenario`: the exact
Theorem 1 solver across topologies (including the new expander and
power-law families), the Theorem 3 (1+eps) sweeps over eps and weight
scale, 2-SiSP, the undirected extension, the MR24b/trivial baselines,
the Section 6 lower-bound constructions, fault injection under a
strict bandwidth budget, and the serving-tier query workloads
(registered by :mod:`repro.serve.workload`).

Run functions are plain module-level functions taking ``(params, seed)``
and returning a flat metrics dict, so worker processes can re-import
them by scenario name.  Keep cell sizes modest: a full ``repro suite
run`` should finish in tens of seconds, a ``--smoke`` run in seconds.
"""

from __future__ import annotations

from typing import Dict

from .measure import measure_algorithm
from .registry import scenario

Params = Dict[str, object]


def _fabric(params: Params, default: str = "fast") -> str:
    """Exchange engine for this cell.

    ``repro suite run --fabric ...`` injects a ``fabric`` key into
    every cell's parameter point; scenarios thread it through to the
    solvers so one flag re-runs the whole catalog on another engine.
    """
    return str(params.get("fabric", default))


# -- exact RPaths (Theorem 1) across topologies ------------------------------

@scenario(
    "exact-random",
    params=[{"n": 40}, {"n": 64}],
    seeds=[0, 1],
    smoke_params=[{"n": 24}],
    description="Theorem 1 on sparse random digraphs (small D, small "
                "h_st: the trivial baseline's favourite regime)",
    tags=("exact", "theorem1"),
)
def run_exact_random(params: Params, seed: int):
    from ..graphs.generators import random_instance
    inst = random_instance(int(params["n"]), seed=seed)
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "exact-chords",
    params=[{"hops": 24}, {"hops": 40}],
    seeds=[0, 1],
    smoke_params=[{"hops": 12}],
    description="Theorem 1 on the h_st = Theta(n) chords+hub family "
                "(the regime separating it from both baselines)",
    tags=("exact", "theorem1"),
)
def run_exact_chords(params: Params, seed: int):
    from ..graphs.generators import path_with_chords_instance
    inst = path_with_chords_instance(
        int(params["hops"]), seed=seed, overlay_hub=True)
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "exact-grid",
    params=[{"rows": 4, "cols": 8}, {"rows": 5, "cols": 10}],
    seeds=[0],
    smoke_params=[{"rows": 3, "cols": 5}],
    description="Theorem 1 on directed grids (deterministic +2-hop "
                "detour ground truth)",
    tags=("exact", "theorem1", "topology"),
)
def run_exact_grid(params: Params, seed: int):
    from ..graphs.generators import grid_instance
    inst = grid_instance(int(params["rows"]), int(params["cols"]))
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "exact-layered",
    params=[{"layers": 6, "width": 3}, {"layers": 8, "width": 4}],
    seeds=[0, 1],
    smoke_params=[{"layers": 4, "width": 2}],
    description="Theorem 1 on leveled DAGs where every s-t path is "
                "shortest and replacement paths abound",
    tags=("exact", "theorem1", "topology"),
)
def run_exact_layered(params: Params, seed: int):
    from ..graphs.generators import layered_instance
    inst = layered_instance(
        int(params["layers"]), int(params["width"]), seed=seed)
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "topo-expander",
    params=[{"n": 40, "degree": 4}, {"n": 64, "degree": 4}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "degree": 3}],
    description="Theorem 1 on near-regular expander-style digraphs "
                "(logarithmic D, dense detour structure)",
    tags=("exact", "theorem1", "topology"),
)
def run_topo_expander(params: Params, seed: int):
    from ..graphs.generators import expander_instance
    inst = expander_instance(
        int(params["n"]), degree=int(params["degree"]), seed=seed)
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "topo-powerlaw",
    params=[{"n": 40, "attach": 2}, {"n": 64, "attach": 2}],
    seeds=[0, 1],
    smoke_params=[{"n": 24, "attach": 2}],
    description="Theorem 1 on preferential-attachment power-law "
                "digraphs (hub-dominated congestion)",
    tags=("exact", "theorem1", "topology"),
)
def run_topo_powerlaw(params: Params, seed: int):
    from ..graphs.generators import power_law_instance
    inst = power_law_instance(
        int(params["n"]), attach=int(params["attach"]), seed=seed)
    return measure_algorithm(inst, "theorem1", seed=seed,
                             fabric=_fabric(params)).metrics()


# -- approximate RPaths (Theorem 3) sweeps -----------------------------------

@scenario(
    "apx-eps-sweep",
    params=[{"n": 32, "epsilon": 0.5},
            {"n": 32, "epsilon": 0.25},
            {"n": 32, "epsilon": 0.1}],
    seeds=[0, 1],
    smoke_params=[{"n": 20, "epsilon": 0.5}],
    description="Theorem 3 (1+eps) sandwich and round cost as eps "
                "shrinks on weighted random digraphs",
    tags=("approx", "theorem3", "sweep"),
)
def run_apx_eps_sweep(params: Params, seed: int):
    from ..graphs.generators import random_instance
    inst = random_instance(int(params["n"]), seed=seed, weighted=True)
    return measure_algorithm(
        inst, "apx", seed=seed, fabric=_fabric(params),
        epsilon=float(params["epsilon"])).metrics()


@scenario(
    "apx-weight-scale",
    params=[{"n": 28, "max_weight": 4},
            {"n": 28, "max_weight": 64},
            {"n": 28, "max_weight": 512}],
    seeds=[0, 1],
    smoke_params=[{"n": 18, "max_weight": 8}],
    description="Theorem 3 weight-scale sweep: the scale ladder grows "
                "with log(max weight), the guarantee must not",
    tags=("approx", "theorem3", "sweep"),
)
def run_apx_weight_scale(params: Params, seed: int):
    from ..graphs.generators import random_instance
    inst = random_instance(
        int(params["n"]), seed=seed, weighted=True,
        max_weight=int(params["max_weight"]))
    return measure_algorithm(
        inst, "apx", seed=seed, epsilon=0.25,
        fabric=_fabric(params)).metrics()


# -- 2-SiSP and the undirected extension -------------------------------------

@scenario(
    "two-sisp",
    params=[{"family": "double-path", "size": 10},
            {"family": "random", "size": 40}],
    seeds=[0, 1],
    smoke_params=[{"family": "double-path", "size": 6}],
    description="Corollary 6.2: 2-SiSP = RPaths + O(D) aggregation, "
                "checked against the centralized 2-SiSP length",
    tags=("exact", "two-sisp"),
)
def run_two_sisp(params: Params, seed: int):
    from ..graphs.generators import double_path_instance, random_instance
    if params["family"] == "double-path":
        inst = double_path_instance(int(params["size"]), extra=2)
    else:
        inst = random_instance(int(params["size"]), seed=seed)
    return measure_algorithm(inst, "two-sisp", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "undirected-extension",
    params=[{"n": 36, "weighted": False}, {"n": 36, "weighted": True}],
    seeds=[0, 1],
    smoke_params=[{"n": 20, "weighted": False}],
    description="Undirected RPaths in O(T_SSSP + h_st + D) rounds "
                "(the [HS01]/[MMG89] structure)",
    tags=("extension", "undirected"),
)
def run_undirected(params: Params, seed: int):
    from ..extensions.undirected import random_undirected_instance
    inst = random_undirected_instance(
        int(params["n"]), seed=seed, weighted=bool(params["weighted"]))
    return measure_algorithm(inst, "undirected", seed=seed,
                             fabric=_fabric(params)).metrics()


# -- baselines ----------------------------------------------------------------

@scenario(
    "baseline-mr24",
    params=[{"hops": 20}, {"hops": 32}],
    seeds=[0, 1],
    smoke_params=[{"hops": 10}],
    description="MR24b-style baseline on the chords family (the "
                "sqrt(n h_st) regime Theorem 1 improves on)",
    tags=("baseline",),
)
def run_baseline_mr24(params: Params, seed: int):
    from ..graphs.generators import path_with_chords_instance
    inst = path_with_chords_instance(int(params["hops"]), seed=seed)
    return measure_algorithm(inst, "mr24b", seed=seed,
                             fabric=_fabric(params)).metrics()


@scenario(
    "baseline-trivial",
    params=[{"hops": 20}, {"hops": 32}],
    seeds=[0, 1],
    smoke_params=[{"hops": 10}],
    description="Trivial h_st x SSSP baseline on the chords family "
                "(rounds grow linearly with h_st)",
    tags=("baseline",),
)
def run_baseline_trivial(params: Params, seed: int):
    from ..graphs.generators import path_with_chords_instance
    inst = path_with_chords_instance(int(params["hops"]), seed=seed)
    return measure_algorithm(inst, "trivial", seed=seed,
                             fabric=_fabric(params)).metrics()


# -- lower bound and robustness ----------------------------------------------

@scenario(
    "lowerbound-hard",
    params=[{"k": 2, "d": 2, "p": 1}, {"k": 3, "d": 2, "p": 1}],
    seeds=[0, 1],
    smoke_params=[{"k": 2, "d": 2, "p": 1}],
    description="Section 6 hard instance G(k,d,p): Lemma 6.8 "
                "dichotomy plus the disjointness reduction",
    tags=("lowerbound",),
)
def run_lowerbound_hard(params: Params, seed: int):
    import random as _random

    from ..lowerbound import (
        build_hard_instance,
        decide_disjointness_via_two_sisp,
        verify_correspondence,
    )
    rng = _random.Random(seed)
    k = int(params["k"])
    matrix = [[rng.randint(0, 1) for _ in range(k)] for _ in range(k)]
    x = [rng.randint(0, 1) for _ in range(k * k)]
    hard = build_hard_instance(
        k, int(params["d"]), int(params["p"]), matrix, x)
    report = verify_correspondence(hard)
    xx = [rng.randint(0, 1) for _ in range(4)]
    yy = [rng.randint(0, 1) for _ in range(4)]
    red = decide_disjointness_via_two_sisp(
        xx, yy, 2, use_oracle_knowledge=True, fabric=_fabric(params))
    return {
        "n": hard.n,
        "m": len(hard.instance.edges),
        "hop_count": hard.instance.hop_count,
        "rounds": red.rounds,
        "messages": 0,
        "words": 0,
        "max_link_words": 0,
        "violations": 0,
        "correct": bool(report.holds and red.correct),
        "optimal_length": report.optimal_length,
        "hit_count": report.hit_count,
    }


@scenario(
    "fault-injection",
    params=[{"rows": 3, "cols": 6, "bandwidth": 8}],
    seeds=[0, 1],
    smoke_params=[{"rows": 3, "cols": 5, "bandwidth": 8}],
    description="Theorem 1 under a strict per-link word budget: zero "
                "violations, and genuine overloads must raise",
    tags=("robustness",),
)
def run_fault_injection(params: Params, seed: int):
    from ..congest.errors import BandwidthExceededError
    from ..congest.network import CongestNetwork
    from ..graphs.generators import grid_instance

    inst = grid_instance(int(params["rows"]), int(params["cols"]))
    meas = measure_algorithm(
        inst, "theorem1", seed=seed, fabric=_fabric(params),
        landmarks=list(range(inst.n)),
        bandwidth_words=int(params["bandwidth"]))
    metrics = meas.metrics()
    # The second half of the scenario: a genuinely overloaded strict
    # network must fail loudly, not drop words.
    net = CongestNetwork(2, [(0, 1)], bandwidth_words=1, strict=True)
    try:
        net.exchange({0: [(1, (1, 2, 3, 4))]})
        detected = False
    except BandwidthExceededError:
        detected = True
    metrics["overload_detected"] = detected
    metrics["correct"] = bool(
        metrics["correct"] and metrics["violations"] == 0 and detected)
    return metrics


# -- large-n kernel cells (vector fabric) ------------------------------------

@scenario(
    "scaling-vector",
    params=[{"n": 2048, "k": 8, "hop_limit": 16}],
    seeds=[0],
    smoke_params=[{"n": 192, "k": 4, "hop_limit": 8}],
    description="Kernel-covered primitives (k-source + pruned hop-BFS) "
                "on an n=2048 expander — a cell size the vector fabric "
                "unlocks, oracle-checked against centralized BFS",
    tags=("scaling", "vector"),
)
def run_scaling_vector(params: Params, seed: int):
    from collections import deque

    from ..congest import INF, multi_source_hop_bfs
    from ..core.hop_bfs import pruned_max_hop_bfs
    from ..graphs.generators import expander_instance

    n = int(params["n"])
    k = int(params["k"])
    hop_limit = int(params["hop_limit"])
    inst = expander_instance(n, degree=4, seed=seed)
    net = inst.build_network(fabric=_fabric(params, default="vector"))

    step = max(1, inst.n // k)
    sources = list(range(0, inst.n, step))[:k]
    dist = multi_source_hop_bfs(net, sources, hop_limit)
    seeds_map = {v: (i, i) for i, v in enumerate(inst.path)}
    tables = pruned_max_hop_bfs(
        net, seeds_map, hop_limit=hop_limit,
        avoid_edges=inst.path_edge_set(), record_for=inst.path)

    # Centralized oracle: hop-bounded BFS per source over the raw
    # adjacency (cheap next to the simulated execution).
    adj = inst.adjacency()
    correct = True
    for rank, s in enumerate(sources):
        want = [INF] * inst.n
        want[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            du = want[u] + 1
            if du > hop_limit:
                continue
            for v, _ in adj[u]:
                if want[v] >= INF:
                    want[v] = du
                    queue.append(v)
        if dist[rank] != want:
            correct = False
            break
    settled = sum(1 for row in tables.values()
                  for entry in row if entry is not None)
    ledger = net.ledger
    return {
        "n": inst.n,
        "m": inst.m,
        "hop_count": inst.hop_count,
        "rounds": ledger.rounds,
        "messages": ledger.messages,
        "words": ledger.words,
        "max_link_words": ledger.max_link_words,
        "violations": ledger.violations,
        "settled_entries": settled,
        "correct": bool(correct and settled > len(inst.path)),
    }


# -- serving-tier workloads ---------------------------------------------------
# The serve-* scenarios (uniform / zipf / adversarial / mixed query
# streams against the sharded oracle service) register themselves on
# import; pulling the module in here keeps the registry the single
# source of truth for `repro suite list` and worker re-imports.
from ..serve import workload as _serve_workload  # noqa: E402,F401

# -- dynamic-graph robustness -------------------------------------------------
# The dynamic-* scenarios (fault storms / regional failures / rolling
# maintenance against the live serving tier) register the incremental
# invalidation path as first-class, verified suite cells.
from ..dynamic import scenarios as _dynamic_scenarios  # noqa: E402,F401
