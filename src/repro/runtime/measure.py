"""One (instance, algorithm) measurement — the runtime's inner loop.

Both the scenario catalog and :mod:`repro.analysis.experiments` funnel
through :func:`measure_algorithm`, so every harness (CLI, benches,
suite, tables) counts rounds, words, congestion, and oracle correctness
the same way.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..congest.words import INF
from ..graphs.instance import RPathsInstance

#: Algorithms the runtime knows how to drive.
ALGORITHMS = ("theorem1", "mr24b", "trivial", "apx", "two-sisp",
              "undirected")


@dataclass
class Measurement:
    """Ledger numbers plus the oracle verdict for one execution."""

    algorithm: str
    instance_name: str
    n: int
    m: int
    hop_count: int
    rounds: int
    messages: int
    words: int
    max_link_words: int
    violations: int
    correct: bool
    wall_time: float
    lengths: List[float] = field(default_factory=list, repr=False)
    extras: Dict[str, object] = field(default_factory=dict)

    @property
    def rounds_per_sec(self) -> float:
        """Fabric throughput of this execution (0.0 when untimed)."""
        if self.wall_time <= 0:
            return 0.0
        return self.rounds / self.wall_time

    def metrics(self) -> Dict[str, object]:
        """Flat JSON-safe metrics mapping (CellResult.metrics shape)."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "hop_count": self.hop_count,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
            "max_link_words": self.max_link_words,
            "violations": self.violations,
            "correct": self.correct,
        }
        out.update(self.extras)
        return out


def _exact_match(lengths: Sequence[float], truth: Sequence[int]) -> bool:
    return len(lengths) == len(truth) and all(
        (t >= INF and (x >= INF or x == float("inf"))) or
        (t < INF and x == t)
        for x, t in zip(lengths, truth))


def _apx_match(lengths: Sequence[float], truth: Sequence[int],
               epsilon: float) -> bool:
    return len(lengths) == len(truth) and all(
        (t >= INF and x == float("inf")) or
        (t < INF and t - 1e-9 <= x <= (1 + epsilon) * t + 1e-9)
        for x, t in zip(lengths, truth))


def worst_ratio(lengths: Sequence[float], truth: Sequence[int]) -> float:
    """Worst finite computed/true ratio (1.0 when nothing is finite)."""
    worst = 1.0
    for got, want in zip(lengths, truth):
        if want < INF and got != float("inf"):
            worst = max(worst, got / want)
    return worst


def measure_algorithm(
    instance: RPathsInstance,
    algorithm: str,
    seed: int = 0,
    epsilon: Optional[float] = None,
    truth: Optional[Sequence[int]] = None,
    check: bool = True,
    **solver_kwargs: object,
) -> Measurement:
    """Run ``algorithm`` on ``instance`` and package the measurement.

    ``truth`` (centralized replacement lengths) may be supplied to avoid
    recomputing the oracle when several algorithms share an instance;
    with ``check=False`` the oracle is skipped entirely and ``correct``
    is vacuously True (the lower-bound and fault scenarios verify their
    own invariants instead).
    """
    from ..baselines.centralized import replacement_lengths, two_sisp_length

    start = time.perf_counter()
    extras: Dict[str, object] = {}
    if algorithm == "theorem1":
        from ..core.rpaths import solve_rpaths
        report = solve_rpaths(instance, seed=seed, **solver_kwargs)
        lengths = list(report.lengths)
        extras["landmark_count"] = report.landmark_count
    elif algorithm == "mr24b":
        from ..baselines.mr24 import solve_rpaths_mr24
        report = solve_rpaths_mr24(instance, seed=seed, **solver_kwargs)
        lengths = list(report.lengths)
    elif algorithm == "trivial":
        from ..baselines.naive_distributed import solve_rpaths_naive
        report = solve_rpaths_naive(instance, **solver_kwargs)
        lengths = list(report.lengths)
    elif algorithm == "apx":
        from ..approx.apx_rpaths import solve_apx_rpaths
        if epsilon is None:
            raise ValueError("algorithm 'apx' needs epsilon")
        report = solve_apx_rpaths(
            instance, epsilon=epsilon, seed=seed, **solver_kwargs)
        lengths = list(report.lengths)
        extras["epsilon"] = epsilon
        extras["scale_count"] = report.scale_count
    elif algorithm == "two-sisp":
        from ..core.two_sisp import solve_two_sisp
        report = solve_two_sisp(instance, seed=seed, **solver_kwargs)
        lengths = list(report.rpaths.lengths)
        extras["two_sisp_length"] = (
            report.length if report.exists else "inf")
        extras["two_sisp_exists"] = report.exists
    elif algorithm == "undirected":
        from ..extensions.undirected import solve_rpaths_undirected
        report = solve_rpaths_undirected(instance, **solver_kwargs)
        lengths = list(report.lengths)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ALGORITHMS}")
    wall = time.perf_counter() - start

    correct = True
    if check:
        if algorithm == "undirected":
            from ..extensions.undirected import (
                undirected_replacement_lengths,
            )
            truth = (list(truth) if truth is not None
                     else undirected_replacement_lengths(instance))
        elif truth is None:
            truth = replacement_lengths(instance)
        if algorithm == "apx":
            correct = _apx_match(lengths, truth, float(epsilon))
            extras["worst_ratio"] = round(worst_ratio(lengths, truth), 6)
        else:
            correct = _exact_match(lengths, truth)
        if algorithm == "two-sisp":
            want = two_sisp_length(instance)
            got = report.length if report.exists else INF
            correct = correct and (got == min(want, INF)
                                   or (got >= INF and want >= INF))

    ledger = (report.rpaths.ledger if algorithm == "two-sisp"
              else report.ledger)
    return Measurement(
        algorithm=algorithm,
        instance_name=instance.name,
        n=instance.n,
        m=instance.m,
        hop_count=instance.hop_count,
        rounds=ledger.rounds,
        messages=ledger.messages,
        words=ledger.words,
        max_link_words=ledger.max_link_words,
        violations=ledger.violations,
        correct=correct,
        wall_time=wall,
        lengths=lengths,
        extras=extras,
    )
