"""Content-addressed result store and regression diffs.

Every cell result is stored under a key that is the SHA-256 of
``(scenario, canonical params, seed, code version)``, where the code
version hashes every ``.py`` file in the installed ``repro`` package.
Re-running an unchanged suite is therefore pure cache hits; editing any
source file invalidates exactly the runs whose numbers could change.

Layout under the store root (default ``.repro-cache/``, overridable via
``$REPRO_CACHE_DIR`` or ``--cache-dir``)::

    objects/<key>.json      one JSON line per cell (content-addressed)
    runs/<label>.jsonl      append-only per-invocation manifests

Both are JSONL-compatible: ``cat objects/*.json`` or any single run
manifest is a valid JSONL stream, so downstream analysis needs nothing
beyond ``json.loads`` per line.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..telemetry import counters as _counters
from .results import (
    CellResult,
    CellSpec,
    canonical_params,
    results_from_jsonl,
)

DEFAULT_STORE_DIR = ".repro-cache"

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every .py file of the repro package (cached)."""
    global _code_version_cache
    if _code_version_cache is None:
        import repro
        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_cache = digest.hexdigest()[:16]
    return _code_version_cache


def cell_key(spec: CellSpec, version: Optional[str] = None) -> str:
    """Content address of one cell under one code version."""
    version = version or code_version()
    payload = "\0".join([
        spec.scenario,
        canonical_params(spec.params_dict),
        str(spec.seed),
        version,
    ])
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """Filesystem-backed content-addressed cache of cell results."""

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_STORE_DIR)
        self.root = pathlib.Path(root)
        self.objects_dir = self.root / "objects"
        self.runs_dir = self.root / "runs"

    # -- object store ------------------------------------------------------

    def _object_path(self, key: str) -> pathlib.Path:
        return self.objects_dir / f"{key}.json"

    def get(self, key: str) -> Optional[CellResult]:
        """Cached result for ``key``, marked ``cached=True``; or None.

        A corrupt object (interrupted write, concurrent clobber) is a
        cache miss, not an error: it is dropped so the re-run heals it.
        """
        path = self._object_path(key)
        if not path.is_file():
            _counters.registry.inc("repro_store_lookups_total",
                                   outcome="miss")
            return None
        try:
            result = CellResult.from_json(path.read_text())
        except (ValueError, KeyError):
            path.unlink(missing_ok=True)
            _counters.registry.inc("repro_store_lookups_total",
                                   outcome="corrupt")
            return None
        result.cached = True
        _counters.registry.inc("repro_store_lookups_total",
                               outcome="hit")
        return result

    def put(self, result: CellResult) -> pathlib.Path:
        """Persist one result under its key (key must be set).

        Written atomically (temp file + rename) so readers never see a
        partial object.
        """
        if not result.key:
            raise ValueError("result has no content key")
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        path = self._object_path(result.key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(result.to_json() + "\n")
        os.replace(tmp, path)
        _counters.registry.inc("repro_store_puts_total")
        return path

    def __len__(self) -> int:
        if not self.objects_dir.is_dir():
            return 0
        return sum(1 for _ in self.objects_dir.glob("*.json"))

    # -- garbage collection ------------------------------------------------

    def gc(self, dry_run: bool = False) -> Dict[str, object]:
        """Prune objects that can never be read again.

        Three classes are garbage, checked in order:

        * **corrupt** — unparseable objects (interrupted writes); a
          lookup would drop them anyway, gc just does it eagerly.
        * **superseded code** — the stored filename no longer matches
          ``cell_key(spec)`` under the *current* code version, so no
          lookup will ever compute this address again.
        * **superseded topology** — ``serve-oracle`` spills for an
          ``(instance, solver)`` pair at a topology version below the
          newest one on disk; mutation bumped the epoch past them and
          :meth:`~repro.serve.oracle.ReplacementPathOracle.from_snapshot`
          refuses stale epochs, so they are dead weight.

        ``dry_run=True`` reports what *would* be pruned without
        touching the filesystem.  Returns a JSON-safe report.
        """
        from ..serve.shard import SPILL_SCENARIO

        report: Dict[str, object] = {
            "scanned": 0, "kept": 0, "pruned": 0, "bytes": 0,
            "dry_run": bool(dry_run),
            "reasons": {"corrupt": 0, "superseded_code": 0,
                        "superseded_topology": 0},
            "victims": [],
        }
        reasons: Dict[str, int] = report["reasons"]  # type: ignore
        victims: List[Dict[str, object]] = report["victims"]  # type: ignore
        if not self.objects_dir.is_dir():
            return report

        def condemn(path: pathlib.Path, reason: str,
                    detail: str) -> None:
            report["pruned"] += 1  # type: ignore[operator]
            report["bytes"] += path.stat().st_size  # type: ignore
            reasons[reason] += 1
            victims.append({"object": path.name, "reason": reason,
                            "detail": detail})
            if not dry_run:
                path.unlink(missing_ok=True)
            _counters.registry.inc("repro_store_gc_total",
                                   reason=reason)

        # Pass 1: parse everything, classify code-version garbage, and
        # find the newest topology epoch per (instance, solver) spill.
        live: List[Tuple[pathlib.Path, CellResult]] = []
        newest: Dict[Tuple[str, str], int] = {}
        for path in sorted(self.objects_dir.glob("*.json")):
            report["scanned"] += 1  # type: ignore[operator]
            try:
                result = CellResult.from_json(path.read_text())
            except (ValueError, KeyError):
                condemn(path, "corrupt", "unparseable object")
                continue
            if cell_key(result.spec) != path.stem:
                condemn(path, "superseded_code",
                        f"{result.scenario} under an old code version")
                continue
            if result.scenario == SPILL_SCENARIO:
                ident = (str(result.params.get("instance", "")),
                         str(result.params.get("solver", "")))
                epoch = int(result.params.get("topology_version", 0))
                newest[ident] = max(newest.get(ident, 0), epoch)
            live.append((path, result))

        # Pass 2: of the survivors, drop spills whose epoch is behind.
        for path, result in live:
            if result.scenario == SPILL_SCENARIO:
                ident = (str(result.params.get("instance", "")),
                         str(result.params.get("solver", "")))
                epoch = int(result.params.get("topology_version", 0))
                if epoch < newest[ident]:
                    condemn(path, "superseded_topology",
                            f"{ident[0]}@{epoch} < @{newest[ident]}")
                    continue
            report["kept"] += 1  # type: ignore[operator]
        return report

    # -- run manifests -----------------------------------------------------

    def record_run(self, label: str,
                   results: List[CellResult]) -> pathlib.Path:
        """Append one invocation's results as a JSONL run manifest."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        suffix = 0
        while True:
            name = (f"{stamp}-{label}.jsonl" if suffix == 0
                    else f"{stamp}-{label}.{suffix}.jsonl")
            path = self.runs_dir / name
            try:
                # Exclusive create: concurrent runs with the same label
                # and stamp each land on their own manifest.
                fh = path.open("x")
            except FileExistsError:
                suffix += 1
                continue
            with fh:
                for result in results:
                    fh.write(result.to_json() + "\n")
            return path

    @staticmethod
    def load_run(path: os.PathLike) -> List[CellResult]:
        return results_from_jsonl(pathlib.Path(path).read_text())

    # -- trace sinks -------------------------------------------------------

    def new_trace_dir(self, label: str) -> pathlib.Path:
        """Create a fresh trace sink ``traces/<stamp>-<label>/``.

        Trace artifacts live next to the objects/runs they describe so
        one ``--cache-dir`` carries the whole provenance story.
        """
        traces_root = self.root / "traces"
        stamp = time.strftime("%Y%m%d-%H%M%S")
        suffix = 0
        while True:
            name = (f"{stamp}-{label}" if suffix == 0
                    else f"{stamp}-{label}.{suffix}")
            path = traces_root / name
            try:
                path.mkdir(parents=True, exist_ok=False)
            except FileExistsError:
                suffix += 1
                continue
            return path


# -- regression diffs --------------------------------------------------------

@dataclass
class CellDiff:
    """Metric-level change of one cell identity between two runs."""

    identity: str
    changed: Dict[str, Tuple[object, object]]  # metric -> (old, new)


@dataclass
class DiffReport:
    """Structured comparison of two result sets (old vs new)."""

    changed: List[CellDiff] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    unchanged: int = 0

    @property
    def clean(self) -> bool:
        return not (self.changed or self.added or self.removed)

    def summary(self) -> str:
        return (f"{self.unchanged} unchanged, {len(self.changed)} "
                f"changed, {len(self.added)} added, "
                f"{len(self.removed)} removed")


def diff_results(old: List[CellResult],
                 new: List[CellResult]) -> DiffReport:
    """Compare two result sets by cell identity (ignores code version).

    Wall time and cache provenance are not compared — only status and
    the deterministic metrics mapping.
    """
    old_by_id = {r.spec.identity(): r for r in old}
    new_by_id = {r.spec.identity(): r for r in new}
    report = DiffReport()
    for identity in sorted(set(old_by_id) | set(new_by_id)):
        if identity not in new_by_id:
            report.removed.append(identity)
            continue
        if identity not in old_by_id:
            report.added.append(identity)
            continue
        a, b = old_by_id[identity], new_by_id[identity]
        changed: Dict[str, Tuple[object, object]] = {}
        if a.status != b.status:
            changed["status"] = (a.status, b.status)
        for name in sorted(set(a.metrics) | set(b.metrics)):
            if a.metrics.get(name) != b.metrics.get(name):
                changed[name] = (a.metrics.get(name),
                                 b.metrics.get(name))
        if changed:
            report.changed.append(CellDiff(identity, changed))
        else:
            report.unchanged += 1
    return report
