"""Structured records for experiment cells.

A *cell* is the atomic unit of experimental work: one scenario run at
one parameter point with one seed.  :class:`CellSpec` identifies a cell
(it is what travels to worker processes and what gets hashed for the
content-addressed store); :class:`CellResult` is the measured outcome.

Metrics are a flat ``str -> scalar`` mapping so results serialize to a
single JSON line.  Every scenario emits the common keys

``n, m, hop_count, rounds, messages, words, max_link_words, correct``

plus scenario-specific extras (``worst_ratio``, ``violations``, ...).
``wall_time`` lives *outside* the metrics mapping: metrics are
deterministic given (scenario, params, seed, code), wall time is not,
and the determinism tests compare metrics wholesale.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: Result status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"


def canonical_params(params: Mapping[str, object]) -> str:
    """Deterministic JSON rendering of a parameter mapping."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class CellSpec:
    """Identity of one experiment cell (scenario x params x seed)."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    seed: int

    @staticmethod
    def make(scenario: str, params: Mapping[str, object],
             seed: int) -> "CellSpec":
        return CellSpec(
            scenario=scenario,
            params=tuple(sorted(params.items())),
            seed=seed,
        )

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def label(self) -> str:
        """Compact human-readable cell label for tables and logs."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{inner}]#{self.seed}"

    def identity(self) -> str:
        """Code-version-independent identity (used by regression diffs)."""
        return (f"{self.scenario}|{canonical_params(self.params_dict)}"
                f"|{self.seed}")


@dataclass
class CellResult:
    """Measured outcome of one executed (or cached) cell."""

    scenario: str
    params: Dict[str, object]
    seed: int
    key: str = ""
    status: str = STATUS_OK
    metrics: Dict[str, object] = field(default_factory=dict)
    wall_time: float = 0.0
    error: str = ""
    cached: bool = False

    @property
    def spec(self) -> CellSpec:
        return CellSpec.make(self.scenario, self.params, self.seed)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def correct(self) -> Optional[bool]:
        """Oracle verdict if the scenario reports one (None otherwise)."""
        value = self.metrics.get("correct")
        return None if value is None else bool(value)

    @property
    def rounds_per_sec(self) -> Optional[float]:
        """Fabric throughput of this cell: simulated rounds per second.

        Derived from the deterministic ``rounds`` metric and the
        measured wall time (which, like throughput, lives *outside*
        ``metrics`` so the determinism invariant stays intact).  None
        when the cell reports no round count or no usable wall time.
        """
        rounds = self.metrics.get("rounds")
        if not isinstance(rounds, int) or self.wall_time <= 0:
            return None
        return rounds / self.wall_time

    def to_json(self) -> str:
        """One-line JSON rendering (JSONL-friendly)."""
        rps = self.rounds_per_sec
        return json.dumps({
            "scenario": self.scenario,
            "params": self.params,
            "seed": self.seed,
            "key": self.key,
            "status": self.status,
            "metrics": self.metrics,
            "wall_time": self.wall_time,
            "rounds_per_sec": None if rps is None else round(rps, 1),
            "error": self.error,
        }, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "CellResult":
        data = json.loads(line)
        return CellResult(
            scenario=data["scenario"],
            params=dict(data["params"]),
            seed=int(data["seed"]),
            key=data.get("key", ""),
            status=data.get("status", STATUS_OK),
            metrics=dict(data.get("metrics", {})),
            wall_time=float(data.get("wall_time", 0.0)),
            error=data.get("error", ""),
        )


def results_to_jsonl(results: List[CellResult]) -> str:
    return "\n".join(r.to_json() for r in results) + "\n"


def results_from_jsonl(text: str) -> List[CellResult]:
    return [CellResult.from_json(line)
            for line in text.splitlines() if line.strip()]
