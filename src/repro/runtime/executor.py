"""Parallel experiment execution over scenario cells.

Cells fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
(the solvers are pure-Python CPU work, so threads would serialize on
the GIL).  Workers receive only ``(scenario name, params, seed)`` and
re-import the registry, which keeps the wire format trivially picklable
and guarantees a worker measures exactly what a serial run measures.

Per-cell timeouts are enforced *inside* the worker with ``SIGALRM``
where available (a timed-out cell yields a structured ``timeout``
result and the worker survives).  A parent-side
``future.result(timeout=...)`` backstop additionally marks cells whose
worker went silent; note that without ``SIGALRM`` the hung worker
process itself cannot be reclaimed (``Future.cancel`` cannot stop a
running call), so on such platforms pool shutdown may still wait on
it — queued cells are cancelled, results already collected are kept.
"""

from __future__ import annotations

import os
import signal
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, List, Optional, Sequence, Tuple

from .. import telemetry
from ..telemetry import counters as _counters
from .results import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    CellResult,
    CellSpec,
)

#: Extra parent-side grace on top of the worker-side alarm.
_PARENT_GRACE = 10.0

#: Failure kinds reported to :func:`pool_map` fallbacks.
POOL_TIMEOUT = "timeout"
POOL_CANCELLED = "cancelled"
POOL_ERROR = "error"

_HAS_ALARM = hasattr(signal, "SIGALRM")


class _CellTimeout(Exception):
    pass


def _alarm_handler(signum, frame):  # pragma: no cover - signal path
    raise _CellTimeout()


def default_jobs() -> int:
    """Worker count when the caller does not choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


def execute_cell(spec: CellSpec,
                 timeout: Optional[float] = None) -> CellResult:
    """Run one cell to completion in the current process."""
    from .registry import get_scenario

    if timeout is not None and timeout <= 0:
        timeout = None  # non-positive means "no limit", not "cancel"
    # Worker processes opt into tracing through the inherited env var;
    # in-process runs are a no-op when tracing is already configured.
    telemetry.maybe_enable_from_env()
    start = time.perf_counter()
    old_handler = None
    old_timer = (0.0, 0.0)
    use_alarm = (timeout is not None and _HAS_ALARM)
    if use_alarm:
        try:
            old_handler = signal.signal(signal.SIGALRM, _alarm_handler)
            old_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
        except ValueError:
            # Not in the main thread of this process: fall back to the
            # parent-side backstop.
            use_alarm = False
    try:
        with telemetry.span(f"cell/{spec.scenario}",
                            params=spec.params_dict, seed=spec.seed):
            scen = get_scenario(spec.scenario)
            metrics = scen.run_cell(spec.params_dict, spec.seed)
        status, error = STATUS_OK, ""
    except _CellTimeout:
        metrics, status = {}, STATUS_TIMEOUT
        error = f"cell exceeded {timeout:.1f}s"
    except Exception as exc:  # noqa: BLE001 - cell isolation boundary
        metrics, status = {}, STATUS_ERROR
        error = f"{type(exc).__name__}: {exc}"
    finally:
        if use_alarm:
            # Restore any pre-existing watchdog (handler AND remaining
            # timer), not just cancel ours.
            signal.setitimer(signal.ITIMER_REAL, *old_timer)
            signal.signal(signal.SIGALRM, old_handler)
    wall = time.perf_counter() - start
    _counters.registry.inc("repro_executor_cells_total",
                           scenario=spec.scenario, status=status)
    _counters.registry.observe("repro_executor_cell_seconds", wall,
                               scenario=spec.scenario)
    # Each flush appends this process's finished spans (and a counters
    # snapshot) to its per-pid sink file, so worker telemetry survives
    # pool teardown even when the process is later reused or killed.
    telemetry.flush()
    return CellResult(
        scenario=spec.scenario,
        params=spec.params_dict,
        seed=spec.seed,
        status=status,
        metrics=dict(metrics),
        wall_time=wall,
        error=error,
    )


def _worker(args: Tuple[CellSpec, Optional[float]]) -> CellResult:
    spec, timeout = args
    return execute_cell(spec, timeout=timeout)


def pool_map(
    worker: Callable,
    payloads: Sequence,
    jobs: int,
    backstop: Optional[float] = None,
    fallback: Optional[Callable[[object, str, str], object]] = None,
    progress: Optional[Callable[[object], None]] = None,
) -> List:
    """Ordered process-pool map — the machinery under :func:`run_cells`.

    ``worker`` must be a module-level picklable callable; results come
    back in input order.  ``backstop`` is the parent-side per-item
    ceiling: when it fires, queued items are cancelled (the running
    worker itself cannot be).  A failing item is replaced by
    ``fallback(payload, kind, message)`` with kind one of
    :data:`POOL_TIMEOUT` / :data:`POOL_CANCELLED` / :data:`POOL_ERROR`;
    with no fallback the exception propagates.

    The returned list always has ``len(payloads)`` entries, one per
    payload in order — a worker (or fallback) that returns ``None``
    keeps its slot.  Other subsystems reuse this for non-cell work
    (the sharded query service fans shard batches out through it, and
    the ``parallel=`` solve fan-out ships shared-topology jobs here).

    ``jobs <= 1`` runs every payload inline in this process — same
    fallback/progress/counter semantics, no pool, no pickling — so
    callers can thread a single ``jobs`` knob all the way down.
    """
    results: List[Optional[object]] = [None] * len(payloads)
    if jobs <= 1:
        for idx, payload in enumerate(payloads):
            outcome = "ok"
            wait_start = time.perf_counter()
            try:
                result = worker(payload)
            except Exception as exc:  # noqa: BLE001 - pool failure
                outcome = POOL_ERROR
                if fallback is None:
                    raise
                result = fallback(payload, POOL_ERROR,
                                  f"{type(exc).__name__}: {exc}")
            finally:
                _counters.registry.inc("repro_pool_items_total",
                                       outcome=outcome)
                _counters.registry.observe(
                    "repro_pool_wait_seconds",
                    time.perf_counter() - wait_start)
            if progress is not None:
                progress(result)
            results[idx] = result
        return list(results)
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(worker, payload): idx
            for idx, payload in enumerate(payloads)
        }
        for future, idx in futures.items():
            outcome = "ok"
            wait_start = time.perf_counter()
            try:
                result = future.result(timeout=backstop)
            except FutureTimeoutError:
                # Keep not-yet-started items from piling onto a stuck
                # pool; the running worker itself cannot be cancelled.
                pool.shutdown(wait=False, cancel_futures=True)
                outcome = POOL_TIMEOUT
                if fallback is None:
                    raise
                result = fallback(
                    payloads[idx], POOL_TIMEOUT,
                    f"worker exceeded {backstop:.1f}s backstop")
            except CancelledError:
                outcome = POOL_CANCELLED
                if fallback is None:
                    raise
                result = fallback(
                    payloads[idx], POOL_CANCELLED,
                    "cancelled after an earlier item exceeded the "
                    "parent backstop")
            except Exception as exc:  # noqa: BLE001 - pool failure
                outcome = POOL_ERROR
                if fallback is None:
                    raise
                result = fallback(payloads[idx], POOL_ERROR,
                                  f"{type(exc).__name__}: {exc}")
            finally:
                _counters.registry.inc("repro_pool_items_total",
                                       outcome=outcome)
                _counters.registry.observe(
                    "repro_pool_wait_seconds",
                    time.perf_counter() - wait_start)
            if progress is not None:
                progress(result)
            results[idx] = result
    return list(results)


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int = 1,
    timeout: Optional[float] = None,
    progress: Optional[Callable[[CellResult], None]] = None,
) -> List[CellResult]:
    """Execute ``specs``, ``jobs``-wide, preserving input order.

    ``jobs <= 1`` runs serially in-process (no pool overhead, easier
    debugging); otherwise cells are distributed over a process pool.
    ``progress`` is invoked once per cell as results are collected.
    A non-positive ``timeout`` disables the limit.
    """
    if timeout is not None and timeout <= 0:
        timeout = None
    if jobs <= 1:
        out = []
        for spec in specs:
            result = execute_cell(spec, timeout=timeout)
            if progress is not None:
                progress(result)
            out.append(result)
        return out

    backstop = None if timeout is None else timeout + _PARENT_GRACE

    def fallback(payload: Tuple[CellSpec, Optional[float]], kind: str,
                 message: str) -> CellResult:
        spec, _ = payload
        if kind == POOL_CANCELLED:
            message = ("cancelled after an earlier cell exceeded the "
                       "parent backstop")
        return CellResult(
            scenario=spec.scenario,
            params=spec.params_dict,
            seed=spec.seed,
            status=STATUS_TIMEOUT if kind == POOL_TIMEOUT
            else STATUS_ERROR,
            wall_time=(backstop or 0.0) if kind == POOL_TIMEOUT
            else 0.0,
            error=message,
        )

    return pool_map(
        _worker, [(spec, timeout) for spec in specs], jobs=jobs,
        backstop=backstop, fallback=fallback, progress=progress)
