"""Suite orchestration: registry -> cache -> executor -> store.

:func:`run_suite` is the one entry point every harness uses (the
``repro suite`` CLI, the benches, CI's smoke job): it expands the
requested scenarios into cells, serves what it can from the
content-addressed store, fans the rest out over the executor, persists
fresh results, and writes a JSONL run manifest for later ``suite
diff``.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .. import telemetry
from .executor import run_cells
from .registry import all_scenarios, get_scenario
from .results import CellResult, CellSpec, canonical_params
from .store import ResultStore, cell_key, code_version


@dataclass
class SuiteReport:
    """Outcome of one suite invocation."""

    results: List[CellResult]
    cache_hits: int
    cache_misses: int
    wall_time: float
    jobs: int
    manifest_path: Optional[pathlib.Path] = None
    code_version: str = ""
    trace_dir: Optional[pathlib.Path] = None

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def all_correct(self) -> bool:
        return all(r.correct is not False for r in self.results)

    def by_scenario(self) -> Dict[str, List[CellResult]]:
        out: Dict[str, List[CellResult]] = {}
        for result in self.results:
            out.setdefault(result.scenario, []).append(result)
        return out

    def summary_rows(self) -> List[List[object]]:
        """Per-scenario aggregate rows for the tables renderer."""
        rows: List[List[object]] = []
        for name, cells in sorted(self.by_scenario().items()):
            ok = sum(1 for c in cells if c.ok)
            correct = sum(1 for c in cells if c.correct is not False)
            cached = sum(1 for c in cells if c.cached)
            rounds = [c.metrics.get("rounds") for c in cells
                      if isinstance(c.metrics.get("rounds"), int)]
            # Fabric throughput over the scenario's freshly-executed
            # cells (cached cells carry their original wall time, which
            # says nothing about this run's fabric).
            fresh = [c for c in cells
                     if not c.cached and c.rounds_per_sec is not None]
            if fresh:
                total_rounds = sum(c.metrics["rounds"] for c in fresh)
                total_wall = sum(c.wall_time for c in fresh)
                rps = f"{total_rounds / total_wall:.0f}"
            else:
                rps = "-"
            rows.append([
                name,
                len(cells),
                f"{ok}/{len(cells)}",
                f"{correct}/{len(cells)}",
                cached,
                max(rounds) if rounds else "-",
                rps,
                f"{sum(c.wall_time for c in cells):.2f}s",
            ])
        return rows

    def duration_rows(self, top: int = 10) -> List[List[object]]:
        """The ``top`` slowest cells by wall time (slowest first)."""
        cells = sorted(self.results, key=lambda c: c.wall_time,
                       reverse=True)[:max(0, top)]
        return [
            [
                cell.scenario,
                canonical_params(cell.params),
                cell.seed,
                "cached" if cell.cached else cell.status,
                f"{cell.wall_time:.3f}s",
            ]
            for cell in cells
        ]


def expand_cells(
    names: Optional[Sequence[str]] = None,
    smoke: bool = False,
    fabric: Optional[str] = None,
) -> List[CellSpec]:
    """All cells of the named scenarios (default: whole catalog).

    ``fabric`` injects a ``fabric`` key into every cell's parameter
    point, overriding each scenario's default exchange engine; it
    becomes part of the cell identity, so results for different
    fabrics occupy distinct slots in the content-addressed store.
    ``None`` leaves parameter points (and historical cache keys)
    untouched.
    """
    if fabric is not None:
        from ..congest.network import resolve_fabric
        fabric = resolve_fabric(fabric)
    if names:
        scenarios = [get_scenario(name) for name in names]
    else:
        scenarios = all_scenarios()
    specs: List[CellSpec] = []
    for scen in scenarios:
        specs.extend(scen.cells(smoke=smoke))
    if fabric is not None:
        specs = [
            CellSpec.make(spec.scenario,
                          {**spec.params_dict, "fabric": fabric},
                          spec.seed)
            for spec in specs
        ]
    return specs


def run_suite(
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    smoke: bool = False,
    use_cache: bool = True,
    store: Optional[ResultStore] = None,
    timeout: Optional[float] = None,
    label: str = "suite",
    record: bool = True,
    progress: Optional[Callable[[CellResult], None]] = None,
    fabric: Optional[str] = None,
    trace: bool = False,
) -> SuiteReport:
    """Run (or serve from cache) every cell of the selected scenarios.

    ``fabric`` forces every cell onto one exchange engine (see
    :func:`expand_cells`); scenarios read it from their parameter
    point and thread it through to the solvers.  ``trace`` turns on
    span recording for the invocation and writes the JSONL trace
    artifact into a fresh ``traces/`` directory of the store
    (``SuiteReport.trace_dir``); worker processes inherit the sink via
    the environment and flush their own per-pid files.
    """
    start = time.perf_counter()
    store = store if store is not None else ResultStore()
    version = code_version()

    trace_sink: Optional[pathlib.Path] = None
    if trace:
        trace_sink = store.new_trace_dir(label)
        telemetry.enable_tracing(trace_sink)
        telemetry.write_meta(trace_sink, label=label,
                             scenarios=list(names) if names else "all",
                             smoke=smoke, fabric=fabric, jobs=jobs,
                             code_version=version)
    try:
        specs = expand_cells(names, smoke=smoke, fabric=fabric)
        keys = [cell_key(spec, version) for spec in specs]

        results: List[Optional[CellResult]] = [None] * len(specs)
        missing: List[int] = []
        with telemetry.span("suite/run", label=label, smoke=smoke,
                            fabric=fabric, cells=len(specs)):
            for idx, key in enumerate(keys):
                cached = store.get(key) if use_cache else None
                if cached is not None:
                    results[idx] = cached
                    if progress is not None:
                        progress(cached)
                else:
                    missing.append(idx)

            fresh = run_cells(
                [specs[idx] for idx in missing],
                jobs=jobs, timeout=timeout, progress=progress)
            for idx, result in zip(missing, fresh):
                result.key = keys[idx]
                results[idx] = result
                if use_cache and result.ok:
                    store.put(result)
    finally:
        if trace:
            telemetry.flush(trace_sink)
            telemetry.disable_tracing()

    final = [r for r in results if r is not None]
    report = SuiteReport(
        results=final,
        cache_hits=len(specs) - len(missing),
        cache_misses=len(missing),
        wall_time=time.perf_counter() - start,
        jobs=jobs,
        code_version=version,
        trace_dir=trace_sink,
    )
    if record:
        report.manifest_path = store.record_run(label, final)
    return report


def format_suite_report(report: SuiteReport, title: str = "",
                        durations: int = 0) -> str:
    """Rendered per-scenario summary table plus the cache line.

    ``durations > 0`` appends a table of the N slowest cells.
    """
    from ..analysis.tables import format_table

    table = format_table(
        ["scenario", "cells", "ok", "correct", "cached", "max rounds",
         "rounds/s", "wall"],
        report.summary_rows(),
        title=title or "suite results",
    )
    lines = [
        table,
        f"cells: {len(report.results)}  cache hits: "
        f"{report.cache_hits}  misses: {report.cache_misses}  "
        f"jobs: {report.jobs}  wall: {report.wall_time:.2f}s  "
        f"code: {report.code_version}",
    ]
    if durations > 0 and report.results:
        lines.append(format_table(
            ["scenario", "params", "seed", "status", "wall"],
            report.duration_rows(durations),
            title=f"slowest {min(durations, len(report.results))} cells",
        ))
    if report.manifest_path is not None:
        lines.append(f"manifest: {report.manifest_path}")
    if report.trace_dir is not None:
        lines.append(f"trace: {report.trace_dir}")
    return "\n".join(lines)
